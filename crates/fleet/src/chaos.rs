//! Chaos sweeps: the `{seed × fault-plan × config}` grid.
//!
//! A chaos sweep measures the *failure envelope* the paper's deployment
//! story depends on: with faults injected into every boot, how often
//! does supervision (`Restart=`, start limits) recover the fast path,
//! how often does the BB→conventional fallback fire, and what does boot
//! time under fault look like? Each cell extends the plain sweep grid
//! with a **fault-plan axis**: plan slot `None` is the fault-free
//! control, plan slot `Some(seed)` derives a [`FaultPlan`] from that
//! seed and the scenario's own fault targets (see
//! [`bb_core::fault_targets`]), so the same plan seed means the same
//! faults for every config — the ablation comparison stays paired.
//!
//! Determinism matches [`crate::pool::run_sweep`]: results land in
//! slots addressed by `(cell, plan, seed)`, statistics and notable
//! events are derived in slot order at finalize, and the JSON report
//! (schema `bb-fleet-chaos-v1`) is byte-identical for any worker
//! count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crossbeam::channel;
use crossbeam::deque::{Injector, Stealer, Worker};

use crate::json;
use crate::pool::{next_job, panic_message, FailureKind, PoolConfig, PoolStats, WorkerStats};
use crate::spec::ScenarioSource;
use bb_core::booster::Scenario;
use bb_core::{
    fault_targets, run_with_fallback, with_supervision, BbConfig, BootOutcome, FallbackPolicy,
    PreParser,
};
use bb_init::RestartPolicy;
use bb_sim::{FaultPlan, SimDuration};
use bb_workloads::{tv_scenario_with, TizenParams};

/// Supervision overlay a chaos cell arms on every service unit.
#[derive(Debug, Clone, Copy)]
pub struct Supervision {
    /// Restart policy to apply.
    pub restart: RestartPolicy,
    /// `RestartSec=` backoff, milliseconds.
    pub restart_sec_ms: u64,
    /// `StartLimitBurst=` respawn bound.
    pub start_limit_burst: u32,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            restart: RestartPolicy::OnFailure,
            restart_sec_ms: 100,
            start_limit_burst: 3,
        }
    }
}

/// One cell of the chaos grid.
#[derive(Debug, Clone)]
pub struct ChaosCellSpec {
    /// Cell label; appears in reports and JSON.
    pub label: String,
    /// Scenario source (shared with the plain sweep grid).
    pub source: ScenarioSource,
    /// Scenario seeds; one result slot per `(plan, seed)`.
    pub seeds: Vec<u64>,
    /// Fault-plan axis: `None` is the fault-free control, `Some(seed)`
    /// a seeded plan over the scenario's fault targets.
    pub plan_seeds: Vec<Option<u64>>,
    /// Supervision overlay; `None` boots the units as authored.
    pub supervision: Option<Supervision>,
    /// `(label, config)` pairs each instance boots under.
    pub configs: Vec<(String, BbConfig)>,
    /// Boot-supervisor deadline, milliseconds.
    pub deadline_ms: u64,
}

impl ChaosCellSpec {
    /// A chaos cell generating Tizen TV workloads, with the default
    /// supervision overlay, the fault-free control plan, and the
    /// default fallback deadline.
    pub fn tizen(
        label: impl Into<String>,
        profile: bb_workloads::MachineProfile,
        params: TizenParams,
    ) -> Self {
        let seed = params.seed;
        ChaosCellSpec {
            label: label.into(),
            source: ScenarioSource::Tizen { profile, params },
            seeds: vec![seed],
            plan_seeds: vec![None],
            supervision: Some(Supervision::default()),
            configs: Vec::new(),
            deadline_ms: FallbackPolicy::default().deadline.as_millis(),
        }
    }

    /// A chaos cell booting one fixed scenario.
    pub fn fixed(label: impl Into<String>, scenario: Scenario) -> Self {
        ChaosCellSpec {
            label: label.into(),
            source: ScenarioSource::Fixed(std::sync::Arc::new(scenario)),
            seeds: vec![0],
            plan_seeds: vec![None],
            supervision: Some(Supervision::default()),
            configs: Vec::new(),
            deadline_ms: FallbackPolicy::default().deadline.as_millis(),
        }
    }

    /// Replaces the scenario seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the fault-plan axis to the control plan plus `n` seeded
    /// plans starting at `base`.
    pub fn fault_plans(mut self, n: u64, base: u64) -> Self {
        self.plan_seeds = std::iter::once(None)
            .chain((0..n).map(|i| Some(base + i)))
            .collect();
        self
    }

    /// Replaces the supervision overlay.
    pub fn supervision(mut self, s: Option<Supervision>) -> Self {
        self.supervision = s;
        self
    }

    /// Sets the boot-supervisor deadline.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Adds one config to boot under.
    pub fn config(mut self, label: impl Into<String>, cfg: BbConfig) -> Self {
        self.configs.push((label.into(), cfg));
        self
    }

    /// Adds the standard `"conventional"` and `"bb"` configs.
    pub fn conventional_vs_bb(self) -> Self {
        self.config("conventional", BbConfig::conventional())
            .config("bb", BbConfig::full())
    }

    /// Boots this cell contributes.
    pub fn boots(&self) -> usize {
        self.seeds.len() * self.plan_seeds.len() * self.configs.len()
    }

    fn plan_label(plan_seed: Option<u64>) -> String {
        match plan_seed {
            None => "none".to_owned(),
            Some(s) => format!("plan-{s}"),
        }
    }
}

/// The chaos grid.
#[derive(Debug, Clone, Default)]
pub struct ChaosSpec {
    /// The cells.
    pub cells: Vec<ChaosCellSpec>,
}

impl ChaosSpec {
    /// An empty chaos sweep.
    pub fn new() -> Self {
        ChaosSpec::default()
    }

    /// Adds a cell.
    pub fn cell(mut self, cell: ChaosCellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// Total boots across the grid.
    pub fn total_boots(&self) -> usize {
        self.cells.iter().map(ChaosCellSpec::boots).sum()
    }

    /// Expands the grid into jobs in deterministic (cell, plan, seed)
    /// order.
    pub fn jobs(&self) -> Vec<ChaosJob> {
        let mut jobs = Vec::new();
        for (cell, c) in self.cells.iter().enumerate() {
            for plan_idx in 0..c.plan_seeds.len() {
                for seed_idx in 0..c.seeds.len() {
                    jobs.push(ChaosJob {
                        cell,
                        plan_idx,
                        seed_idx,
                    });
                }
            }
        }
        jobs
    }
}

/// One unit of chaos work: all configs of one `(cell, plan, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosJob {
    /// Index into [`ChaosSpec::cells`].
    pub cell: usize,
    /// Index into that cell's plan list.
    pub plan_idx: usize,
    /// Index into that cell's seed list.
    pub seed_idx: usize,
}

/// One boot measurement under fault.
#[derive(Debug, Clone, Copy)]
struct ChaosSample {
    /// User-visible boot time (fallback detection + reboot included for
    /// degraded boots), simulated nanoseconds.
    boot_ns: u64,
    /// Supervised respawns the boot took.
    restarts: u32,
    /// True if the BB→conventional fallback fired.
    degraded: bool,
}

struct ChaosJobOutput {
    job: ChaosJob,
    samples: Vec<ChaosSample>, // one per config, in config order
}

struct ChaosJobFailure {
    job: ChaosJob,
    seed: u64,
    kind: FailureKind,
}

/// Aggregated statistics for one `(cell, plan, config)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfigStats {
    /// Config label.
    pub label: String,
    /// Completed boots (degraded ones included — they completed via the
    /// fallback).
    pub count: usize,
    /// Mean user-visible boot time, simulated ns.
    pub mean_ns: f64,
    /// Median (nearest-rank), simulated ns.
    pub p50_ns: u64,
    /// 95th percentile, simulated ns.
    pub p95_ns: u64,
    /// 99th percentile, simulated ns.
    pub p99_ns: u64,
    /// Boots that fell back to the conventional shape.
    pub degraded: usize,
    /// Boots that crashed but recovered on the fast path (restarts > 0,
    /// no fallback).
    pub recovered: usize,
    /// Total supervised respawns.
    pub restarts: u64,
}

impl ChaosConfigStats {
    /// Degraded-boot rate over completed boots.
    pub fn degraded_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.degraded as f64 / self.count as f64
        }
    }

    /// Of the boots a fault actually hit (recovered or degraded), the
    /// fraction supervision rescued without a fallback.
    pub fn recovery_rate(&self) -> f64 {
        let hit = self.recovered + self.degraded;
        if hit == 0 {
            1.0
        } else {
            self.recovered as f64 / hit as f64
        }
    }
}

/// Aggregated results for one fault plan within one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlanReport {
    /// Plan label (`none` or `plan-<seed>`).
    pub label: String,
    /// Per-config statistics, in config order.
    pub configs: Vec<ChaosConfigStats>,
}

/// Aggregated results for one chaos cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCellReport {
    /// Cell label.
    pub label: String,
    /// Per-plan results, in plan order.
    pub plans: Vec<ChaosPlanReport>,
}

/// One notable per-boot event (degraded or recovered), in slot order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Cell label.
    pub cell: String,
    /// Plan label.
    pub plan: String,
    /// Scenario seed.
    pub seed: u64,
    /// Stable reason line (a [`FailureKind`] rendering).
    pub reason: String,
}

/// One failed chaos job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosFailure {
    /// Cell label.
    pub cell: String,
    /// Plan label.
    pub plan: String,
    /// Scenario seed.
    pub seed: u64,
    /// Stable reason line.
    pub reason: String,
}

/// The deterministic output of a chaos sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Per-cell results, in spec order.
    pub cells: Vec<ChaosCellReport>,
    /// Notable events (degraded / recovered boots), in slot order.
    pub events: Vec<ChaosEvent>,
    /// Failed jobs, sorted by (cell, plan, seed).
    pub failures: Vec<ChaosFailure>,
    /// Completed boots across all cells.
    pub total_boots: usize,
}

impl ChaosReport {
    /// Deterministic JSON: fixed key order, `{:.3}` ms floats, no
    /// host-time fields. Byte-identical for any worker count.
    pub fn to_json(&self) -> String {
        let mut out = json::open_document(json::SCHEMA_CHAOS);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": \"");
            out.push_str(&json::escape(&cell.label));
            out.push_str("\", \"plans\": [");
            for (j, plan) in cell.plans.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"label\": \"");
                out.push_str(&json::escape(&plan.label));
                out.push_str("\", \"configs\": [");
                for (k, c) in plan.configs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n        {{\"label\": \"{}\", \"count\": {}, \"mean_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"degraded\": {}, \"degraded_pct\": {:.3}, \"recovered\": {}, \"recovery_pct\": {:.3}, \"restarts\": {}}}",
                        json::escape(&c.label),
                        c.count,
                        json::ms(c.mean_ns),
                        json::ms(c.p50_ns as f64),
                        json::ms(c.p95_ns as f64),
                        json::ms(c.p99_ns as f64),
                        c.degraded,
                        100.0 * c.degraded_rate(),
                        c.recovered,
                        100.0 * c.recovery_rate(),
                        c.restarts,
                    ));
                }
                if !plan.configs.is_empty() {
                    out.push_str("\n      ");
                }
                out.push_str("]}");
            }
            if !cell.plans.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"cell\": \"{}\", \"plan\": \"{}\", \"seed\": {}, \"reason\": \"{}\"}}",
                json::escape(&e.cell),
                json::escape(&e.plan),
                e.seed,
                json::escape(&e.reason)
            ));
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"cell\": \"{}\", \"plan\": \"{}\", \"seed\": {}, \"reason\": \"{}\"}}",
                json::escape(&f.cell),
                json::escape(&f.plan),
                f.seed,
                json::escape(&f.reason)
            ));
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"total_boots\": {}\n}}\n",
            self.total_boots
        ));
        out
    }

    /// Human-readable table for terminals.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cell in &self.cells {
            let _ = writeln!(out, "{}", cell.label);
            for plan in &cell.plans {
                let _ = writeln!(out, "  plan {}", plan.label);
                let _ = writeln!(
                    out,
                    "    {:<16} {:>6} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
                    "config", "boots", "mean", "p95", "p99", "degraded", "recovered", "restarts"
                );
                for c in &plan.configs {
                    let _ = writeln!(
                        out,
                        "    {:<16} {:>6} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.1}% {:>8.1}% {:>9}",
                        c.label,
                        c.count,
                        c.mean_ns / 1e6,
                        c.p95_ns as f64 / 1e6,
                        c.p99_ns as f64 / 1e6,
                        100.0 * c.degraded_rate(),
                        100.0 * c.recovery_rate(),
                        c.restarts,
                    );
                }
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out, "failures ({}):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(out, "  {} {} seed {}: {}", f.cell, f.plan, f.seed, f.reason);
            }
        }
        let _ = writeln!(out, "total boots aggregated: {}", self.total_boots);
        out
    }
}

/// Everything a chaos sweep returns.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Aggregated, deterministic results (JSON-stable).
    pub report: ChaosReport,
    /// Pool observability (host-time, nondeterministic) — plus the
    /// deterministic total restart count.
    pub stats: PoolStats,
}

/// Runs the chaos grid on a work-stealing pool of `pool.workers`
/// threads. Output is byte-identical for any worker count.
pub fn run_chaos(spec: &ChaosSpec, pool: &PoolConfig) -> ChaosOutcome {
    let jobs = spec.jobs();
    let n_workers = pool.workers.max(1);

    let injector: Injector<ChaosJob> = Injector::new();
    for &job in &jobs {
        injector.push(job);
    }
    let locals: Vec<Worker<ChaosJob>> = (0..n_workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<ChaosJob>> = locals.iter().map(Worker::stealer).collect();

    let (tx, rx) = channel::unbounded::<Result<ChaosJobOutput, ChaosJobFailure>>();
    let started = Instant::now();
    let mut max_queue_depth = jobs.len();
    let mut per_worker: Vec<WorkerStats> = Vec::new();

    // Slots addressed by (cell, plan, seed); filled in arrival order,
    // read in slot order.
    let mut slots: Vec<Vec<Vec<Option<Vec<ChaosSample>>>>> = spec
        .cells
        .iter()
        .map(|c| vec![vec![None; c.seeds.len()]; c.plan_seeds.len()])
        .collect();
    let mut raw_failures: Vec<(usize, usize, usize, u64, String)> = Vec::new();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, local) in locals.into_iter().enumerate() {
            let tx = tx.clone();
            let injector = &injector;
            let stealers = &stealers;
            handles.push(scope.spawn(move |_| {
                let mut stats = WorkerStats::default();
                while let Some(job) = next_job(&local, injector, stealers, w, &mut stats) {
                    let job_started = Instant::now();
                    let result = run_chaos_job(spec, job);
                    stats.busy += job_started.elapsed();
                    stats.jobs += 1;
                    if tx.send(result).is_err() {
                        break;
                    }
                }
                stats
            }));
        }
        drop(tx);

        while let Ok(msg) = rx.recv() {
            max_queue_depth = max_queue_depth.max(injector.len());
            match msg {
                Ok(out) => {
                    let slot = &mut slots[out.job.cell][out.job.plan_idx][out.job.seed_idx];
                    debug_assert!(slot.is_none(), "chaos slot filled twice");
                    *slot = Some(out.samples);
                }
                Err(fail) => raw_failures.push((
                    fail.job.cell,
                    fail.job.plan_idx,
                    fail.job.seed_idx,
                    fail.seed,
                    fail.kind.reason(),
                )),
            }
        }

        per_worker = handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught per job"))
            .collect();
    })
    .expect("chaos scope");

    let wall = started.elapsed();
    let (report, total_restarts) = finalize(spec, &slots, raw_failures);
    ChaosOutcome {
        report,
        stats: PoolStats {
            workers: n_workers,
            wall,
            jobs: jobs.len(),
            max_queue_depth,
            restarts: total_restarts,
            kernel_sims: 0,
            // The supervised entry point consumes its machine
            // internally, so chaos sweeps have no queue depth to
            // report, and they share no artifacts (every boot runs
            // under its own fault plan).
            peak_events: 0,
            plans_compiled: 0,
            plan_cache_hits: 0,
            cells_deduped: 0,
            per_worker,
        },
    }
}

/// Walks the slots in deterministic order, deriving stats and events.
fn finalize(
    spec: &ChaosSpec,
    slots: &[Vec<Vec<Option<Vec<ChaosSample>>>>],
    mut raw_failures: Vec<(usize, usize, usize, u64, String)>,
) -> (ChaosReport, usize) {
    let mut total_boots = 0;
    let mut total_restarts = 0usize;
    let mut events = Vec::new();
    let mut cells = Vec::new();
    for (ci, cell) in spec.cells.iter().enumerate() {
        let mut plans = Vec::new();
        for (pi, &plan_seed) in cell.plan_seeds.iter().enumerate() {
            let plan_label = ChaosCellSpec::plan_label(plan_seed);
            let mut configs = Vec::new();
            for (ki, (label, _)) in cell.configs.iter().enumerate() {
                let samples: Vec<ChaosSample> = slots[ci][pi]
                    .iter()
                    .flatten()
                    .map(|by_config| by_config[ki])
                    .collect();
                let mut sorted: Vec<u64> = samples.iter().map(|s| s.boot_ns).collect();
                sorted.sort_unstable();
                let count = samples.len();
                total_boots += count;
                let restarts: u64 = samples.iter().map(|s| u64::from(s.restarts)).sum();
                total_restarts += restarts as usize;
                configs.push(ChaosConfigStats {
                    label: label.clone(),
                    count,
                    mean_ns: if count == 0 {
                        0.0
                    } else {
                        sorted.iter().map(|&n| n as f64).sum::<f64>() / count as f64
                    },
                    p50_ns: pct(&sorted, 50),
                    p95_ns: pct(&sorted, 95),
                    p99_ns: pct(&sorted, 99),
                    degraded: samples.iter().filter(|s| s.degraded).count(),
                    recovered: samples
                        .iter()
                        .filter(|s| !s.degraded && s.restarts > 0)
                        .count(),
                    restarts,
                });
            }
            // Notable per-boot events, in (seed, config) slot order.
            for (si, slot) in slots[ci][pi].iter().enumerate() {
                let Some(by_config) = slot else { continue };
                for (ki, s) in by_config.iter().enumerate() {
                    let kind = if s.degraded {
                        Some(FailureKind::Degraded {
                            config: cell.configs[ki].0.clone(),
                        })
                    } else if s.restarts > 0 {
                        Some(FailureKind::FaultRecovered {
                            config: cell.configs[ki].0.clone(),
                            restarts: s.restarts,
                        })
                    } else {
                        None
                    };
                    if let Some(kind) = kind {
                        events.push(ChaosEvent {
                            cell: cell.label.clone(),
                            plan: plan_label.clone(),
                            seed: cell.seeds[si],
                            reason: kind.reason(),
                        });
                    }
                }
            }
            plans.push(ChaosPlanReport {
                label: plan_label,
                configs,
            });
        }
        cells.push(ChaosCellReport {
            label: cell.label.clone(),
            plans,
        });
    }
    raw_failures.sort();
    let failures = raw_failures
        .into_iter()
        .map(|(ci, pi, _, seed, reason)| ChaosFailure {
            cell: spec.cells[ci].label.clone(),
            plan: ChaosCellSpec::plan_label(spec.cells[ci].plan_seeds[pi]),
            seed,
            reason,
        })
        .collect();
    (
        ChaosReport {
            cells,
            events,
            failures,
            total_boots,
        },
        total_restarts,
    )
}

fn pct(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100);
    sorted[rank.max(1) - 1]
}

/// Executes one chaos job with panic isolation.
fn run_chaos_job(spec: &ChaosSpec, job: ChaosJob) -> Result<ChaosJobOutput, ChaosJobFailure> {
    let cell = &spec.cells[job.cell];
    let seed = cell.seeds[job.seed_idx];
    let plan_seed = cell.plan_seeds[job.plan_idx];

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let scenario = match &cell.source {
            ScenarioSource::Fixed(s) => (**s).clone(),
            ScenarioSource::Tizen { profile, params } => {
                tv_scenario_with(*profile, TizenParams { seed, ..*params })
            }
        };
        let scenario = match cell.supervision {
            Some(s) => {
                with_supervision(&scenario, s.restart, s.restart_sec_ms, s.start_limit_burst)
            }
            None => scenario,
        };
        let pre = PreParser::build(&scenario.units);
        let plan = match plan_seed {
            None => FaultPlan::none(),
            Some(ps) => FaultPlan::seeded(ps, &fault_targets(&scenario)),
        };
        let policy = FallbackPolicy {
            deadline: SimDuration::from_millis(cell.deadline_ms),
        };
        let mut samples = Vec::with_capacity(cell.configs.len());
        for (_, cfg) in &cell.configs {
            let boot = run_with_fallback(&scenario, cfg, Some(&pre), &plan, &policy)
                .map_err(|e| FailureKind::Boost(e.to_string()))?;
            samples.push(ChaosSample {
                boot_ns: boot.user_boot_time().as_nanos(),
                restarts: boot.restarts(),
                degraded: matches!(boot, BootOutcome::Degraded(_)),
            });
        }
        Ok::<_, FailureKind>(samples)
    }));

    let fail = |kind| Err(ChaosJobFailure { job, seed, kind });
    match outcome {
        Err(payload) => fail(FailureKind::Panic(panic_message(payload))),
        Ok(Err(kind)) => fail(kind),
        Ok(Ok(samples)) => Ok(ChaosJobOutput { job, samples }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_workloads::profiles;

    fn tiny_chaos(plans: u64) -> ChaosSpec {
        ChaosSpec::new().cell(
            ChaosCellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds([1, 2])
            .fault_plans(plans, 100)
            .conventional_vs_bb(),
        )
    }

    #[test]
    fn chaos_sweep_completes_the_grid() {
        let spec = tiny_chaos(2);
        assert_eq!(spec.total_boots(), 2 * 3 * 2);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        assert!(outcome.report.failures.is_empty(), "no job should fail");
        assert_eq!(outcome.report.total_boots, 12);
        let cell = &outcome.report.cells[0];
        assert_eq!(cell.plans.len(), 3);
        assert_eq!(cell.plans[0].label, "none");
        // The control plan is fault-free: nothing degrades or restarts.
        for c in &cell.plans[0].configs {
            assert_eq!(c.degraded, 0);
            assert_eq!(c.restarts, 0);
            assert_eq!(c.recovery_rate(), 1.0);
        }
    }

    #[test]
    fn chaos_json_is_identical_across_worker_counts() {
        let spec = tiny_chaos(2);
        let one = run_chaos(&spec, &PoolConfig::with_workers(1));
        let three = run_chaos(&spec, &PoolConfig::with_workers(3));
        assert_eq!(one.report, three.report);
        assert_eq!(one.report.to_json(), three.report.to_json());
        assert_eq!(one.stats.restarts, three.stats.restarts);
    }

    #[test]
    fn chaos_json_parses_and_carries_the_schema() {
        let spec = tiny_chaos(1);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        let parsed = crate::json::parse(&outcome.report.to_json()).expect("chaos JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(crate::json::Json::as_str),
            Some("bb-fleet-chaos-v1")
        );
        assert_eq!(
            parsed
                .get("total_boots")
                .and_then(crate::json::Json::as_f64),
            Some(8.0)
        );
    }

    #[test]
    fn seeded_plans_inject_observable_faults() {
        // Across a handful of plan seeds, at least one boot must show a
        // fault symptom (a restart, a degraded boot, or a slower boot
        // than the control) — otherwise the injection axis is dead.
        let spec = tiny_chaos(4);
        let outcome = run_chaos(&spec, &PoolConfig::with_workers(2));
        let cell = &outcome.report.cells[0];
        let control_mean: f64 = cell.plans[0].configs.iter().map(|c| c.mean_ns).sum();
        let symptom = cell.plans[1..].iter().any(|p| {
            p.configs
                .iter()
                .any(|c| c.restarts > 0 || c.degraded > 0 || c.mean_ns > control_mean)
        });
        assert!(symptom, "no fault plan produced any observable symptom");
    }
}
