//! One-shot sweep execution and the shared artifact cache.
//!
//! Since the fleet API redesign, the long-lived executor lives in
//! [`crate::service`]: a [`crate::FleetService`] owns the worker
//! threads, the bounded work queue, and the per-client fairness
//! machinery. This module keeps the *one-shot* entry point —
//! [`run_sweep`] spins up a private service, submits the spec as a
//! single ticket, and waits — plus everything a sweep job needs to
//! execute: the [`FleetCache`], the job runner, and the observability
//! types ([`PoolStats`], [`WorkerStats`]).
//!
//! Every job runs under [`std::panic::catch_unwind`], so one poisoned
//! scenario cannot take down a sweep: the panic becomes a
//! [`JobFailure`] on the failure path and the queue keeps draining.
//! A per-job wall-clock deadline (from [`SweepSpec::deadline`]) is
//! checked after the job runs — the simulator has no preemption points,
//! so overruns are detected post-hoc and the result discarded.
//!
//! Determinism: results are identified by `(cell, seed_idx)` and the
//! aggregator stores them into index-addressed slots, so the *output*
//! of a sweep is identical for any worker count even though execution
//! order is not.
//!
//! # Shared artifacts
//!
//! Every sweep runs over a [`FleetCache`]: a [`bb_core::PlanCache`] so
//! each (scenario, config) pair compiles its boot plan once, a
//! scenario memo so jobs with identical sources share one `Arc`'d
//! scenario (which is what makes the pointer-keyed plan cache hit
//! across jobs), a boot-outcome cache that lets [`SweepSpec::dedup`]
//! serve identical grid points without re-simulating, and a
//! service-wide checkpoint memo so forked sweeps ([`SweepSpec::fork`])
//! share kernel-prefix snapshots across jobs, workers, and clients.
//! All four are keyed by the content fingerprints from [`crate::spec`],
//! and all four are invisible in the report: simulation is
//! deterministic, so cached results are bit-identical to fresh ones.
//! [`run_sweep`] takes the cache explicitly; pass [`FleetCache::fresh`]
//! for a private per-call cache, or hold one `Arc` across calls (or
//! behind a [`crate::FleetService`]) to carry artifacts across sweeps.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::aggregate::SweepReport;
use crate::service::{FleetService, ServiceConfig, ServiceReport, WorkItem};
use crate::spec::{job_fingerprint, job_scenario, Job, SweepSpec};
use bb_core::booster::Scenario;
use bb_core::{BootRequest, Checkpoint, CheckpointPhase, PlanCache, PreParser};

/// Pool sizing for the one-shot entry points ([`run_sweep`],
/// [`crate::run_chaos`]). The persistent service has its own
/// [`ServiceConfig`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count. Defaults to available parallelism.
    pub workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl PoolConfig {
    /// A pool with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers: workers.max(1),
        }
    }
}

/// Prefix key of a [`bb_core::BbConfig`] — the features that shape the
/// boot up to the kernel→init handoff.
pub(crate) type PrefixKey = (bool, bool, bool, bool);

/// Entries above which the scenario memo is reset. Generous: a sweep
/// holds one entry per distinct (source, seed) pair, and losing an
/// entry only costs sharing, never correctness.
const SCENARIO_MEMO_CAP: usize = 4096;

/// Entries above which the boot-outcome cache is reset.
const BOOT_CACHE_CAP: usize = 65536;

/// Checkpoints the service-wide memo keeps before resetting. Small
/// relative to the other caps: checkpoints own a machine snapshot, and
/// a clear only costs re-forking.
const CHECKPOINT_MEMO_CAP: usize = 256;

/// One memoized boot outcome (everything a job extracts from a boot),
/// fanned out to every grid point that requests the same
/// (scenario-fingerprint, config) pair.
#[derive(Debug, Clone)]
enum CachedBoot {
    /// The boot completed; these values are deterministic functions of
    /// the (scenario, config) pair, so replaying them is bit-identical
    /// to re-simulating.
    Done {
        boot_ns: u64,
        quiesce_ns: u64,
        /// The machine's event-queue high-water mark (simulated state,
        /// deterministic), replayed into `PoolStats::peak_events`.
        peak_events: usize,
        /// Span telemetry, present only if the simulating sweep had
        /// [`SweepSpec::metrics`] on. A metrics sweep treats a
        /// span-less entry as a miss and re-simulates.
        spans: Option<Vec<(String, u64)>>,
    },
    /// The boot never met its completion definition; every requesting
    /// slot reports the failure under its own config label.
    Incomplete,
}

/// Shared artifacts of one or more sweeps: compiled boot plans, memoized
/// scenarios, deduplicated boot outcomes, and kernel-prefix checkpoints
/// (see the module docs).
///
/// All interior state is behind its own lock, so one cache can back any
/// number of concurrent workers — and, through [`crate::FleetService`],
/// any number of concurrent clients: two clients submitting overlapping
/// grids share plans, scenarios, boot outcomes, and checkpoints.
/// Everything in here is derived deterministically from scenario
/// content, so sharing never changes a report.
#[derive(Debug, Default)]
pub struct FleetCache {
    plans: PlanCache,
    scenarios: Mutex<HashMap<u64, (Arc<Scenario>, PreParser)>>,
    boots: Mutex<HashMap<(u64, u8), CachedBoot>>,
    /// Kernel-handoff checkpoints, keyed by (job fingerprint, prefix
    /// key). Promoted from per-worker to service-wide: any worker (or
    /// client) forking the same scenario prefix resumes from one shared
    /// snapshot.
    checkpoints: Mutex<HashMap<(u64, PrefixKey), Arc<Checkpoint>>>,
}

impl FleetCache {
    /// An empty cache.
    pub fn new() -> Self {
        FleetCache::default()
    }

    /// An empty cache behind the `Arc` the fleet APIs take — the
    /// fresh-cache convenience default:
    /// `run_sweep(&spec, &pool, &FleetCache::fresh())`.
    pub fn fresh() -> Arc<Self> {
        Arc::new(FleetCache::new())
    }

    /// The plan-compilation cache (for counter snapshots).
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// Drops every cached artifact.
    pub fn clear(&self) {
        self.plans.clear();
        lock(&self.scenarios).clear();
        lock(&self.boots).clear();
        lock(&self.checkpoints).clear();
    }

    /// The memoized `(scenario, preparser)` for job fingerprint `fp`,
    /// building (outside the lock) and inserting on a miss. On a racing
    /// double-build the first insert wins, so every job of a fingerprint
    /// converges on one `Arc` — the pointer identity the plan cache
    /// keys on.
    fn scenario(
        &self,
        fp: u64,
        build: impl FnOnce() -> (Arc<Scenario>, PreParser),
    ) -> (Arc<Scenario>, PreParser) {
        if let Some(hit) = lock(&self.scenarios).get(&fp) {
            return hit.clone();
        }
        let built = build();
        let mut map = lock(&self.scenarios);
        if map.len() >= SCENARIO_MEMO_CAP {
            map.clear();
        }
        map.entry(fp).or_insert(built).clone()
    }

    /// The cached outcome for (`fp`, config `bits`), if one exists and
    /// carries the telemetry this sweep needs.
    fn boot_lookup(&self, fp: u64, bits: u8, metrics: bool) -> Option<CachedBoot> {
        let map = lock(&self.boots);
        let hit = map.get(&(fp, bits))?;
        if metrics {
            // A span-less entry (cached by a metrics-off sweep) cannot
            // serve a metrics sweep; re-simulate and upgrade it.
            if let CachedBoot::Done { spans: None, .. } = hit {
                return None;
            }
        }
        Some(hit.clone())
    }

    /// Stores (or upgrades) the outcome for (`fp`, config `bits`).
    fn boot_insert(&self, fp: u64, bits: u8, outcome: CachedBoot) {
        let mut map = lock(&self.boots);
        if map.len() >= BOOT_CACHE_CAP {
            map.clear();
        }
        map.insert((fp, bits), outcome);
    }

    /// The memoized kernel-handoff checkpoint for `key`, if any worker
    /// has forked it already.
    fn checkpoint(&self, key: (u64, PrefixKey)) -> Option<Arc<Checkpoint>> {
        lock(&self.checkpoints).get(&key).cloned()
    }

    /// Memoizes a freshly forked checkpoint. First insert wins: on a
    /// racing double-fork both boots resume from the winner (the
    /// snapshots are deterministic and identical, so the race is
    /// invisible in reports — only the kernel-simulation *count* can
    /// vary, and that is host-side observability).
    fn checkpoint_insert(&self, key: (u64, PrefixKey), ckpt: Checkpoint) -> Arc<Checkpoint> {
        let mut map = lock(&self.checkpoints);
        if map.len() >= CHECKPOINT_MEMO_CAP {
            map.clear();
        }
        map.entry(key).or_insert_with(|| Arc::new(ckpt)).clone()
    }
}

/// Locks a cache map, recovering from poisoning: worker panics are
/// caught per job and these maps are only ever mutated whole-entry, so
/// a poisoned lock cannot hide a half-written state.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// One boot measurement inside a job.
#[derive(Debug, Clone, Copy)]
pub struct BootSample {
    /// Index into the cell's config list.
    pub config: usize,
    /// Boot time (power-on to completion), simulated nanoseconds.
    pub boot_ns: u64,
    /// Full quiesce time (deferred work included), simulated nanoseconds.
    pub quiesce_ns: u64,
}

/// A completed job: every config of one `(cell, seed)` slot.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Which slot this fills.
    pub job: Job,
    /// The seed that was run.
    pub seed: u64,
    /// One sample per config, in config order.
    pub samples: Vec<BootSample>,
    /// Per-config `(span name, duration ns)` lists, in config order.
    /// Empty unless [`SweepSpec::metrics`] is set.
    pub spans: Vec<Vec<(String, u64)>>,
    /// Kernel-phase simulations this job actually executed. Equals the
    /// config count for a plain sweep; with [`SweepSpec::fork`] it is
    /// the number of distinct prefix keys in the cell's config list the
    /// service-wide memo had no checkpoint for, and boots served from
    /// the dedup cache simulate nothing at all.
    pub kernel_sims: usize,
    /// Deepest simulator event queue observed across this job's boots
    /// (the machine's high-water mark, a sizing signal for
    /// `EventQueue::with_capacity`).
    pub peak_events: usize,
    /// Boots served from the dedup cache instead of simulated (see
    /// [`SweepSpec::dedup`]).
    pub deduped: usize,
    /// Wall-clock time the job took (host time; not in JSON output).
    pub elapsed: Duration,
}

/// Why a job produced no samples. The workspace-level
/// [`bb_core::JobError`], re-exported under the historical fleet name.
pub use bb_core::JobError as FailureKind;

/// A failed job, reported on the failure path instead of aggregated.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Which slot failed.
    pub job: Job,
    /// The seed that was running.
    pub seed: u64,
    /// What happened.
    pub kind: FailureKind,
}

/// Per-worker observability counters.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: usize,
    /// Wall-clock time spent executing jobs.
    pub busy: Duration,
}

/// Pool-level observability for the sweep summary. Host-time based and
/// therefore *never* part of the deterministic JSON output.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Wall-clock duration of the whole sweep (submit to finalize).
    pub wall: Duration,
    /// Jobs executed (completed + failed).
    pub jobs: usize,
    /// Maximum service work-queue depth observed while this sweep's
    /// jobs were completing (at least this sweep's own job count).
    pub max_queue_depth: usize,
    /// Supervised respawns observed across all boots. Always 0 for
    /// fault-free sweeps; chaos sweeps count every `Restart=` respawn.
    pub restarts: usize,
    /// Kernel-phase simulations executed across all completed jobs.
    /// Equals the boot count for a plain sweep; a forked sweep
    /// ([`SweepSpec::fork`]) simulates the shared prefix once per
    /// distinct prefix key the service-wide memo was missing, so this
    /// drops well below the boot count — the work the checkpoint fork
    /// saved.
    pub kernel_sims: usize,
    /// Deepest simulator event queue observed across all completed
    /// boots. Deterministic (simulated state, not host time), but kept
    /// out of the JSON report so sweep documents stay byte-stable
    /// across simulator sizing changes.
    pub peak_events: usize,
    /// Boot plans compiled while this sweep ran — one per distinct
    /// (scenario, config) pair that actually booted (see
    /// [`bb_core::PlanCache`]). Measured as a cache-counter delta, so
    /// on a service running concurrent tickets a neighbor's compiles
    /// can be attributed here — observability, never report data.
    pub plans_compiled: u64,
    /// Boots that reused an already-compiled plan instead of running
    /// the pass pipeline again.
    pub plan_cache_hits: u64,
    /// Boots served from the dedup cache instead of simulated (see
    /// [`SweepSpec::dedup`]). Like everything in `PoolStats` this is
    /// execution observability, not part of the JSON report: racing
    /// workers may simulate a grid point twice, so the count can vary
    /// run to run even though the report never does.
    pub cells_deduped: usize,
    /// Artifact recoveries across all boots (retried reads included).
    /// Always 0 for sweeps without a corruption axis; see
    /// [`bb_core::recovery`].
    pub recoveries: usize,
    /// Artifacts the integrity chain rejected outright (subset of
    /// `recoveries`): corrupt, stale, or unreadable.
    pub artifacts_rejected: usize,
    /// Per-worker counters, snapshotted when this sweep finalized.
    /// On a long-lived service these are service-lifetime totals, not
    /// per-ticket ones.
    pub per_worker: Vec<WorkerStats>,
}

impl PoolStats {
    /// Jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.jobs as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of the sweep wall time worker `w` spent executing jobs.
    pub fn utilization(&self, w: usize) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.per_worker[w].busy.as_secs_f64() / wall
        } else {
            0.0
        }
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool: {} workers, {} jobs in {:.3}s ({:.1} jobs/s), peak queue depth {}",
            self.workers,
            self.jobs,
            self.wall.as_secs_f64(),
            self.jobs_per_sec(),
            self.max_queue_depth,
        );
        if self.peak_events > 0 {
            let _ = writeln!(
                out,
                "  peak simulator event-queue depth {}",
                self.peak_events
            );
        }
        if self.kernel_sims > 0 {
            let _ = writeln!(out, "  kernel phase simulated {} time(s)", self.kernel_sims);
        }
        if self.plans_compiled > 0 || self.plan_cache_hits > 0 {
            let _ = writeln!(
                out,
                "  boot plans compiled {} time(s), served from cache {} time(s)",
                self.plans_compiled, self.plan_cache_hits,
            );
        }
        if self.cells_deduped > 0 {
            let _ = writeln!(
                out,
                "  {} boot(s) deduplicated (identical grid points served from cache)",
                self.cells_deduped,
            );
        }
        if self.recoveries > 0 {
            let _ = writeln!(
                out,
                "  {} artifact recover(ies), {} artifact(s) rejected by the integrity chain",
                self.recoveries, self.artifacts_rejected,
            );
        }
        for (w, ws) in self.per_worker.iter().enumerate() {
            let _ = writeln!(
                out,
                "  worker {w}: {} jobs, {:.0}% utilized",
                ws.jobs,
                100.0 * self.utilization(w),
            );
        }
        out
    }
}

/// Everything a sweep returns: the deterministic report and the
/// host-time pool statistics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Aggregated, deterministic results (JSON-stable).
    pub report: SweepReport,
    /// Pool observability (host-time, nondeterministic).
    pub stats: PoolStats,
}

/// Runs `spec` to completion on a private [`FleetService`] of
/// `pool.workers` threads, over the given [`FleetCache`].
///
/// This is the single one-shot entry point (the historical
/// `run_sweep`/`run_sweep_cached` pair collapsed into it). Pass
/// [`FleetCache::fresh`] for the old fresh-cache behavior, or hold one
/// `Arc<FleetCache>` across calls to carry compiled plans, memoized
/// scenarios, deduplicated boot outcomes, and checkpoints between
/// sweeps. Reports are unaffected by cache state — a warm cache only
/// changes how much work the sweep skips (visible in [`PoolStats`]).
///
/// The aggregated report is byte-identical for any worker count: result
/// slots are addressed by `(cell, seed_idx)` and finalized in slot
/// order, and nothing host-time-dependent enters the report. Long-lived
/// callers wanting `submit`/`poll`/`cancel` and cross-client sharing
/// should hold a [`FleetService`] instead.
pub fn run_sweep(spec: &SweepSpec, pool: &PoolConfig, cache: &Arc<FleetCache>) -> SweepOutcome {
    let service =
        FleetService::with_cache(ServiceConfig::one_shot(pool.workers), Arc::clone(cache));
    let ticket = service
        .submit(0, WorkItem::Sweep(spec.clone()))
        .expect("a one-shot service accepts a single sweep");
    match service.wait(ticket) {
        Ok(ServiceReport::Sweep(outcome)) => outcome,
        _ => unreachable!("sweep tickets finalize into sweep reports"),
    }
}

/// Executes one job with panic isolation and post-hoc deadline check.
pub(crate) fn run_job(
    spec: &SweepSpec,
    shared: &[Option<(Arc<Scenario>, PreParser)>],
    fps: &[(u64, bool)],
    cache: &FleetCache,
    job: Job,
    builder: &mut bb_sim::MachineBuilder,
) -> Result<JobOutput, JobFailure> {
    let cell = &spec.cells[job.cell];
    let seed = cell.seeds[job.seed_idx];
    let (base_fp, seed_dependent) = fps[job.cell];
    let fp = job_fingerprint(base_fp, seed_dependent, seed);
    let started = std::time::Instant::now();

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let builder = &mut *builder;
        // Jobs with the same fingerprint converge on one Arc'd
        // scenario, which is what lets the pointer-keyed plan cache hit
        // across jobs and cells.
        let (scenario, pre) = cache.scenario(fp, || job_scenario(cell, seed, &shared[job.cell]));
        let mut samples = Vec::with_capacity(cell.configs.len());
        let mut spans = Vec::new();
        let mut kernel_sims = 0usize;
        let mut peak_events = 0usize;
        let mut deduped = 0usize;
        for (config, (label, cfg)) in cell.configs.iter().enumerate() {
            let bits = cfg.bits();
            // Dedup: an identical grid point that already ran anywhere
            // in the sweep replays its (deterministic) outcome.
            if spec.dedup {
                match cache.boot_lookup(fp, bits, spec.metrics) {
                    Some(CachedBoot::Incomplete) => {
                        return Err(FailureKind::Incomplete {
                            config: label.clone(),
                        })
                    }
                    Some(CachedBoot::Done {
                        boot_ns,
                        quiesce_ns,
                        peak_events: peak,
                        spans: cached_spans,
                    }) => {
                        samples.push(BootSample {
                            config,
                            boot_ns,
                            quiesce_ns,
                        });
                        peak_events = peak_events.max(peak);
                        if spec.metrics {
                            spans
                                .push(cached_spans.expect("boot_lookup filters span-less entries"));
                        }
                        deduped += 1;
                        continue;
                    }
                    None => {}
                }
            }
            let boot = if spec.fork {
                // Forked mode: one checkpoint per distinct (scenario,
                // prefix key), memoized service-wide in the FleetCache.
                // Every boot resumes (the first included), so forked ≡
                // unforked reduces to resume ≡ run — the property
                // bb-core's checkpoint tests pin.
                let key = (fp, cfg.prefix_key());
                let ckpt = match cache.checkpoint(key) {
                    Some(ckpt) => ckpt,
                    None => {
                        let forked = BootRequest::new(&scenario)
                            .config(*cfg)
                            .prepared(&pre)
                            .machine_builder(&mut *builder)
                            .plan_cache(&cache.plans, &scenario)
                            .checkpoint_at(CheckpointPhase::KernelHandoff)
                            .map_err(|e| FailureKind::Boost(e.to_string()))?;
                        kernel_sims += 1;
                        cache.checkpoint_insert(key, forked)
                    }
                };
                BootRequest::new(&scenario)
                    .config(*cfg)
                    .prepared(&pre)
                    .machine_builder(&mut *builder)
                    .plan_cache(&cache.plans, &scenario)
                    .resume(&ckpt)
            } else {
                kernel_sims += 1;
                BootRequest::new(&scenario)
                    .config(*cfg)
                    .prepared(&pre)
                    .machine_builder(&mut *builder)
                    .plan_cache(&cache.plans, &scenario)
                    .run()
            };
            let boot = boot.map_err(|e| FailureKind::Boost(e.to_string()))?;
            let peak = boot.machine.event_queue_stats().peak_depth;
            peak_events = peak_events.max(peak);
            builder.recycle(boot.machine);
            let report = boot.report;
            // A boot that never met its completion definition is a
            // reported failure, not a worker panic (`try_boot_time`).
            let Some(boot_time) = report.try_boot_time() else {
                if spec.dedup {
                    cache.boot_insert(fp, bits, CachedBoot::Incomplete);
                }
                return Err(FailureKind::Incomplete {
                    config: label.clone(),
                });
            };
            let boot_spans: Option<Vec<(String, u64)>> = spec.metrics.then(|| {
                bb_core::boot_spans(&report)
                    .into_iter()
                    .map(|s| (s.name, s.end.since(s.start).as_nanos()))
                    .collect()
            });
            samples.push(BootSample {
                config,
                boot_ns: boot_time.as_nanos(),
                quiesce_ns: report.quiesce_time.as_nanos(),
            });
            if spec.dedup {
                cache.boot_insert(
                    fp,
                    bits,
                    CachedBoot::Done {
                        boot_ns: boot_time.as_nanos(),
                        quiesce_ns: report.quiesce_time.as_nanos(),
                        peak_events: peak,
                        spans: boot_spans.clone(),
                    },
                );
            }
            if let Some(s) = boot_spans {
                spans.push(s);
            }
        }
        Ok::<_, FailureKind>((samples, spans, kernel_sims, peak_events, deduped))
    }));
    let elapsed = started.elapsed();

    let fail = |kind| Err(JobFailure { job, seed, kind });
    match outcome {
        Err(payload) => fail(FailureKind::Panic(panic_message(payload))),
        Ok(Err(kind)) => fail(kind),
        Ok(Ok((samples, spans, kernel_sims, peak_events, deduped))) => {
            if let Some(deadline) = spec.deadline {
                if elapsed > deadline {
                    return fail(FailureKind::DeadlineExceeded { elapsed });
                }
            }
            Ok(JobOutput {
                job,
                seed,
                samples,
                spans,
                kernel_sims,
                peak_events,
                deduped,
                elapsed,
            })
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CellSpec;
    use bb_core::BbConfig;
    use bb_workloads::{profiles, TizenParams};

    fn tiny_spec(seeds: impl IntoIterator<Item = u64>) -> SweepSpec {
        SweepSpec::new().cell(
            CellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds(seeds)
            .conventional_vs_bb(),
        )
    }

    #[test]
    fn sweep_completes_and_counts_jobs() {
        let spec = tiny_spec([1, 2, 3]);
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
        assert_eq!(outcome.stats.jobs, 3);
        assert_eq!(outcome.stats.workers, 2);
        assert_eq!(outcome.report.total_boots, 6);
        assert!(outcome.report.failures.is_empty());
        let jobs_done: usize = outcome.stats.per_worker.iter().map(|w| w.jobs).sum();
        assert_eq!(jobs_done, 3);
        assert!(outcome.stats.summary().contains("pool: 2 workers"));
        // The event-queue high-water mark made it up from the machines.
        assert!(outcome.stats.peak_events > 0);
        assert!(outcome
            .stats
            .summary()
            .contains("peak simulator event-queue depth"));
    }

    #[test]
    fn zero_deadline_fails_every_job_but_sweep_survives() {
        let spec = tiny_spec([1, 2]).deadline(Duration::ZERO);
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
        assert_eq!(outcome.report.failures.len(), 2);
        assert_eq!(outcome.report.total_boots, 0);
        assert!(outcome
            .report
            .failures
            .iter()
            .all(|f| f.reason == "deadline exceeded"));
    }

    #[test]
    fn incomplete_boot_is_a_reported_failure_not_a_panic() {
        use bb_init::ServiceBody;
        use bb_sim::{FlagId, Op};
        use bb_workloads::tv_scenario_with;

        let mut scenario = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams {
                services: 24,
                ..TizenParams::open_source()
            },
        );
        // Deadlock the completion unit: its body waits on the
        // boot-complete gate (flag 0, the first flag the executor
        // creates), which in turn waits on this unit's readiness. With
        // no start timeout the boot can never complete.
        let name = scenario.completion[0].clone();
        let exec = scenario
            .units
            .iter()
            .find(|u| u.name == name)
            .and_then(|u| u.exec.exec_start.clone())
            .expect("completion unit has an ExecStart");
        scenario.workloads.insert(
            exec,
            ServiceBody {
                pre_ready: vec![Op::WaitFlag(FlagId::from_raw(0))],
                post_ready: Vec::new(),
            },
        );

        let spec = SweepSpec::new().cell(
            CellSpec::fixed("hung", scenario)
                .seeds([0, 1])
                .conventional_vs_bb(),
        );
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(2), &FleetCache::fresh());
        assert_eq!(outcome.report.total_boots, 0);
        assert_eq!(outcome.report.failures.len(), 2);
        assert!(outcome
            .report
            .failures
            .iter()
            .all(|f| f.reason == "incomplete boot: conventional"));
    }

    /// The acceptance property of checkpoint-forked sweeps: JSON
    /// byte-identical to the unforked sweep, shared kernel phase
    /// simulated once per prefix key per job.
    #[test]
    fn forked_sweep_is_byte_identical_and_simulates_the_kernel_once() {
        let spec = tiny_spec([1, 2]);
        let pool = PoolConfig::with_workers(2);
        let plain = run_sweep(&spec, &pool, &FleetCache::fresh());
        let forked = run_sweep(&spec.clone().with_fork(true), &pool, &FleetCache::fresh());
        assert_eq!(plain.report.to_json(), forked.report.to_json());
        // conventional vs bb differ in every prefix feature → 2 keys
        // per job; the plain sweep simulates the kernel per boot. The
        // job fingerprints are seed-dependent, so the service-wide memo
        // cannot share across the two jobs and the counts stay exact.
        assert_eq!(plain.stats.kernel_sims, 4);
        assert_eq!(forked.stats.kernel_sims, 4);

        // A config axis that shares one prefix key forks for real:
        // full BB vs BB-without-bb_group boot the same kernel.
        let shared_prefix = SweepSpec::new().cell(
            CellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds([1, 2])
            .config("bb", BbConfig::full())
            .config(
                "bb-no-group",
                BbConfig {
                    bb_group: false,
                    ..BbConfig::full()
                },
            ),
        );
        let plain = run_sweep(&shared_prefix, &pool, &FleetCache::fresh());
        let forked = run_sweep(
            &shared_prefix.clone().with_fork(true),
            &pool,
            &FleetCache::fresh(),
        );
        assert_eq!(plain.report.to_json(), forked.report.to_json());
        assert_eq!(plain.stats.kernel_sims, 4, "2 jobs x 2 configs");
        assert_eq!(forked.stats.kernel_sims, 2, "2 jobs x 1 shared prefix");
        assert!(forked.stats.summary().contains("kernel phase simulated"));
    }

    #[test]
    fn pool_config_default_is_at_least_one_worker() {
        assert!(PoolConfig::default().workers >= 1);
        assert_eq!(PoolConfig::with_workers(0).workers, 1);
    }

    /// The acceptance property of grid dedup: identical grid points are
    /// simulated once, results fan out, and the JSON report is
    /// byte-identical with dedup on or off.
    #[test]
    fn dedup_serves_identical_grid_points_once_and_keeps_json_identical() {
        // Two cells with the same source and seeds: the whole second
        // cell duplicates the first.
        let spec = SweepSpec::new()
            .cell(
                CellSpec::tizen(
                    "a",
                    profiles::ue48h6200(),
                    TizenParams {
                        services: 24,
                        ..TizenParams::open_source()
                    },
                )
                .seeds([1, 2])
                .conventional_vs_bb(),
            )
            .cell(
                CellSpec::tizen(
                    "b",
                    profiles::ue48h6200(),
                    TizenParams {
                        services: 24,
                        ..TizenParams::open_source()
                    },
                )
                .seeds([1, 2])
                .conventional_vs_bb(),
            );
        // One worker makes the dedup count deterministic: jobs run in
        // order, so cell b's 4 boots are all cache hits.
        let deduped = run_sweep(&spec, &PoolConfig::with_workers(1), &FleetCache::fresh());
        let plain = run_sweep(
            &spec.clone().with_dedup(false),
            &PoolConfig::with_workers(2),
            &FleetCache::fresh(),
        );
        assert_eq!(deduped.report.to_json(), plain.report.to_json());
        assert_eq!(plain.stats.cells_deduped, 0);
        assert_eq!(deduped.stats.cells_deduped, 4);
        assert_eq!(deduped.stats.kernel_sims, 4, "only cell a simulates");
        assert!(deduped.stats.summary().contains("deduplicated"));
    }

    /// Plan compilation is per (scenario, config), not per boot: a
    /// fixed cell booting the same template across seed slots compiles
    /// each config once and reuses it from the cache.
    #[test]
    fn plan_cache_compiles_each_scenario_config_pair_once() {
        use bb_workloads::tv_scenario_with;
        let scenario = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams {
                services: 24,
                ..TizenParams::open_source()
            },
        );
        // Dedup off so every slot really boots; the plan cache is the
        // only sharing layer under test.
        let spec = SweepSpec::new()
            .cell(
                CellSpec::fixed("pinned", scenario)
                    .seeds([0, 1, 2])
                    .conventional_vs_bb(),
            )
            .with_dedup(false);
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(1), &FleetCache::fresh());
        assert!(outcome.report.failures.is_empty());
        assert_eq!(outcome.report.total_boots, 6);
        assert_eq!(outcome.stats.plans_compiled, 2, "one per config");
        assert_eq!(outcome.stats.plan_cache_hits, 4, "remaining boots reuse");
        assert!(outcome.stats.summary().contains("boot plans compiled"));
    }

    /// A caller-owned cache carries artifacts across sweeps: an
    /// identical second sweep simulates nothing and reports the same
    /// bytes.
    #[test]
    fn a_shared_fleet_cache_carries_results_across_sweeps() {
        let spec = tiny_spec([1]);
        let pool = PoolConfig::with_workers(1);
        let cache = FleetCache::fresh();
        let first = run_sweep(&spec, &pool, &cache);
        let second = run_sweep(&spec, &pool, &cache);
        assert_eq!(first.report.to_json(), second.report.to_json());
        assert_eq!(first.stats.cells_deduped, 0);
        assert_eq!(second.stats.cells_deduped, 2);
        assert_eq!(second.stats.kernel_sims, 0);
        assert_eq!(second.stats.plans_compiled, 0);
        cache.clear();
        assert!(cache.plans().is_empty());
        let third = run_sweep(&spec, &pool, &cache);
        assert_eq!(third.stats.cells_deduped, 0, "clear() really clears");
    }

    /// The checkpoint memo lives in the cache now: a second forked
    /// sweep over the same cache resumes from the memoized kernel
    /// snapshots without simulating the prefix again.
    #[test]
    fn checkpoints_carry_across_sweeps_through_the_cache() {
        let spec = tiny_spec([1, 2]).with_fork(true).with_dedup(false);
        let pool = PoolConfig::with_workers(1);
        let cache = FleetCache::fresh();
        let first = run_sweep(&spec, &pool, &cache);
        assert_eq!(first.stats.kernel_sims, 4, "2 jobs x 2 prefix keys");
        let second = run_sweep(&spec, &pool, &cache);
        assert_eq!(
            second.stats.kernel_sims, 0,
            "every prefix resumes from the service-wide memo"
        );
        assert_eq!(first.report.to_json(), second.report.to_json());
    }

    /// A metrics sweep must not be served span-less outcomes cached by
    /// a metrics-off sweep — it re-simulates and upgrades the entry.
    #[test]
    fn metrics_sweeps_do_not_reuse_spanless_cached_boots() {
        let spec = tiny_spec([1]);
        let pool = PoolConfig::with_workers(1);
        let cache = FleetCache::fresh();
        run_sweep(&spec, &pool, &cache);
        let with_metrics = run_sweep(&spec.clone().with_metrics(true), &pool, &cache);
        assert_eq!(with_metrics.stats.cells_deduped, 0);
        assert!(with_metrics.report.metrics.is_some());
        // The upgraded entries now serve metrics sweeps.
        let again = run_sweep(&spec.clone().with_metrics(true), &pool, &cache);
        assert_eq!(again.stats.cells_deduped, 2);
        assert_eq!(
            with_metrics.report.to_json(),
            again.report.to_json(),
            "cached boots replay byte-identically"
        );
        assert_eq!(
            with_metrics.report.metrics.as_ref().map(|m| m.to_json()),
            again.report.metrics.as_ref().map(|m| m.to_json()),
            "cached spans replay byte-identically"
        );
    }
}
