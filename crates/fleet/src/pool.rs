//! The worker pool: a fixed-size, work-stealing executor for sweep
//! jobs.
//!
//! Jobs are seeded into a [`crossbeam::deque::Injector`]; each worker
//! owns a FIFO deque and steals from the injector first, then from
//! siblings. Every job runs under [`std::panic::catch_unwind`], so one
//! poisoned scenario cannot take down the sweep: the panic becomes a
//! [`JobFailure`] on the report channel and the pool keeps draining.
//! A per-job wall-clock deadline (from [`SweepSpec::deadline`]) is
//! checked after the job runs — the simulator has no preemption points,
//! so overruns are detected post-hoc and the result discarded.
//!
//! Determinism: results are identified by `(cell, seed_idx)` and the
//! aggregator stores them into index-addressed slots, so the *output*
//! of a sweep is identical for any worker count even though execution
//! order is not.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crossbeam::channel;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::aggregate::{Aggregator, SweepReport};
use crate::spec::{job_scenario, Job, SweepSpec};
use bb_core::{BootRequest, Checkpoint, CheckpointPhase};

/// Pool sizing and policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker thread count. Defaults to available parallelism.
    pub workers: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl PoolConfig {
    /// A pool with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers: workers.max(1),
        }
    }
}

/// One boot measurement inside a job.
#[derive(Debug, Clone, Copy)]
pub struct BootSample {
    /// Index into the cell's config list.
    pub config: usize,
    /// Boot time (power-on to completion), simulated nanoseconds.
    pub boot_ns: u64,
    /// Full quiesce time (deferred work included), simulated nanoseconds.
    pub quiesce_ns: u64,
}

/// A completed job: every config of one `(cell, seed)` slot.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Which slot this fills.
    pub job: Job,
    /// The seed that was run.
    pub seed: u64,
    /// One sample per config, in config order.
    pub samples: Vec<BootSample>,
    /// Per-config `(span name, duration ns)` lists, in config order.
    /// Empty unless [`SweepSpec::metrics`] is set.
    pub spans: Vec<Vec<(String, u64)>>,
    /// Kernel-phase simulations this job actually executed. Equals the
    /// config count for a plain sweep; with [`SweepSpec::fork`] it is
    /// the number of distinct prefix keys in the cell's config list.
    pub kernel_sims: usize,
    /// Deepest simulator event queue observed across this job's boots
    /// (the machine's high-water mark, a sizing signal for
    /// `EventQueue::with_capacity`).
    pub peak_events: usize,
    /// Wall-clock time the job took (host time; not in JSON output).
    pub elapsed: Duration,
}

/// Why a job produced no samples. The workspace-level
/// [`bb_core::JobError`], re-exported under the historical fleet name.
pub use bb_core::JobError as FailureKind;

/// A failed job, reported on the failure path instead of aggregated.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Which slot failed.
    pub job: Job,
    /// The seed that was running.
    pub seed: u64,
    /// What happened.
    pub kind: FailureKind,
}

/// Per-worker observability counters.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Jobs this worker executed.
    pub jobs: usize,
    /// Jobs it stole from sibling deques (subset of `jobs`).
    pub steals: usize,
    /// Wall-clock time spent executing jobs.
    pub busy: Duration,
}

/// Pool-level observability for the sweep summary. Host-time based and
/// therefore *never* part of the deterministic JSON output.
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Worker thread count.
    pub workers: usize,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
    /// Jobs executed (completed + failed).
    pub jobs: usize,
    /// Maximum injector queue depth observed by the aggregator.
    pub max_queue_depth: usize,
    /// Supervised respawns observed across all boots. Always 0 for
    /// fault-free sweeps; chaos sweeps count every `Restart=` respawn.
    pub restarts: usize,
    /// Kernel-phase simulations executed across all completed jobs.
    /// Equals the boot count for a plain sweep; a forked sweep
    /// ([`SweepSpec::fork`]) simulates the shared prefix once per
    /// distinct prefix key per job, so this drops well below the boot
    /// count — the work the checkpoint fork saved.
    pub kernel_sims: usize,
    /// Deepest simulator event queue observed across all completed
    /// boots. Deterministic (simulated state, not host time), but kept
    /// out of the JSON report so sweep documents stay byte-stable
    /// across simulator sizing changes.
    pub peak_events: usize,
    /// Per-worker counters.
    pub per_worker: Vec<WorkerStats>,
}

impl PoolStats {
    /// Jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.jobs as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of the sweep wall time worker `w` spent executing jobs.
    pub fn utilization(&self, w: usize) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.per_worker[w].busy.as_secs_f64() / wall
        } else {
            0.0
        }
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pool: {} workers, {} jobs in {:.3}s ({:.1} jobs/s), peak queue depth {}",
            self.workers,
            self.jobs,
            self.wall.as_secs_f64(),
            self.jobs_per_sec(),
            self.max_queue_depth,
        );
        if self.peak_events > 0 {
            let _ = writeln!(
                out,
                "  peak simulator event-queue depth {}",
                self.peak_events
            );
        }
        if self.kernel_sims > 0 {
            let _ = writeln!(out, "  kernel phase simulated {} time(s)", self.kernel_sims);
        }
        for (w, ws) in self.per_worker.iter().enumerate() {
            let _ = writeln!(
                out,
                "  worker {w}: {} jobs ({} stolen), {:.0}% utilized",
                ws.jobs,
                ws.steals,
                100.0 * self.utilization(w),
            );
        }
        out
    }
}

/// Everything a sweep returns: the deterministic report and the
/// host-time pool statistics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Aggregated, deterministic results (JSON-stable).
    pub report: SweepReport,
    /// Pool observability (host-time, nondeterministic).
    pub stats: PoolStats,
}

/// Runs `spec` on a work-stealing pool of `pool.workers` threads.
///
/// The aggregated report is byte-identical for any worker count: result
/// slots are addressed by `(cell, seed_idx)` and finalized in slot
/// order, and nothing host-time-dependent enters the report.
pub fn run_sweep(spec: &SweepSpec, pool: &PoolConfig) -> SweepOutcome {
    let jobs = spec.jobs();
    let shared = spec.shared_templates();
    let n_workers = pool.workers.max(1);

    let injector: Injector<Job> = Injector::new();
    for &job in &jobs {
        injector.push(job);
    }

    let locals: Vec<Worker<Job>> = (0..n_workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Job>> = locals.iter().map(Worker::stealer).collect();

    let (tx, rx) = channel::unbounded::<Result<JobOutput, JobFailure>>();
    let mut aggregator = Aggregator::new(spec);
    let started = Instant::now();
    let mut max_queue_depth = jobs.len();
    let mut kernel_sims = 0usize;
    let mut peak_events = 0usize;
    let mut per_worker: Vec<WorkerStats> = Vec::new();

    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (w, local) in locals.into_iter().enumerate() {
            let tx = tx.clone();
            let injector = &injector;
            let stealers = &stealers;
            let shared = &shared;
            handles.push(scope.spawn(move |_| {
                let mut stats = WorkerStats::default();
                // One machine pool per worker: every boot this worker
                // runs draws on (and returns to) the same recycled
                // allocations, so the inner loop stops paying fresh
                // table growth per job. Recycling is observationally
                // invisible (the MachineBuilder contract), so reports
                // stay byte-identical for any worker count.
                let mut builder = bb_sim::MachineBuilder::new();
                loop {
                    let job = next_job(&local, injector, stealers, w, &mut stats);
                    let Some(job) = job else { break };
                    let job_started = Instant::now();
                    let result = run_job(spec, shared, job, &mut builder);
                    stats.busy += job_started.elapsed();
                    stats.jobs += 1;
                    if tx.send(result).is_err() {
                        break; // aggregator went away; nothing to do
                    }
                }
                stats
            }));
        }
        drop(tx);

        // Streaming aggregation on this thread while workers run.
        while let Ok(msg) = rx.recv() {
            max_queue_depth = max_queue_depth.max(injector.len());
            if let Ok(out) = &msg {
                kernel_sims += out.kernel_sims;
                peak_events = peak_events.max(out.peak_events);
            }
            aggregator.accept(msg);
        }

        per_worker = handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught per job"))
            .collect();
    })
    .expect("sweep scope");

    let wall = started.elapsed();
    SweepOutcome {
        report: aggregator.finalize(),
        stats: PoolStats {
            workers: n_workers,
            wall,
            jobs: jobs.len(),
            max_queue_depth,
            restarts: 0,
            kernel_sims,
            peak_events,
            per_worker,
        },
    }
}

/// Acquires the next job: local deque, then the global injector, then
/// sibling deques (work stealing). Generic so the chaos runner can
/// drive the same pool shape with its own job type.
pub(crate) fn next_job<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
    stats: &mut WorkerStats,
) -> Option<T> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(job) => return Some(job),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for (other, stealer) in stealers.iter().enumerate() {
        if other == me {
            continue;
        }
        loop {
            match stealer.steal() {
                Steal::Success(job) => {
                    stats.steals += 1;
                    return Some(job);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

/// Executes one job with panic isolation and post-hoc deadline check.
fn run_job(
    spec: &SweepSpec,
    shared: &[Option<(
        std::sync::Arc<bb_core::booster::Scenario>,
        bb_core::PreParser,
    )>],
    job: Job,
    builder: &mut bb_sim::MachineBuilder,
) -> Result<JobOutput, JobFailure> {
    let cell = &spec.cells[job.cell];
    let seed = cell.seeds[job.seed_idx];
    let started = Instant::now();

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let builder = &mut *builder;
        let (scenario, pre) = job_scenario(cell, seed, &shared[job.cell]);
        let mut samples = Vec::with_capacity(cell.configs.len());
        let mut spans = Vec::new();
        let mut kernel_sims = 0usize;
        let mut peak_events = 0usize;
        // Forked mode: one checkpoint per distinct prefix key, shared
        // by every config of the job. Every boot resumes (the first
        // included), so forked ≡ unforked reduces to resume ≡ run —
        // the property bb-core's checkpoint tests pin.
        let mut checkpoints: Vec<((bool, bool, bool, bool), Checkpoint)> = Vec::new();
        for (config, (label, cfg)) in cell.configs.iter().enumerate() {
            let boot = if spec.fork {
                let key = cfg.prefix_key();
                if !checkpoints.iter().any(|(k, _)| *k == key) {
                    let ckpt = BootRequest::new(&scenario)
                        .config(*cfg)
                        .prepared(&pre)
                        .machine_builder(&mut *builder)
                        .checkpoint_at(CheckpointPhase::KernelHandoff)
                        .map_err(|e| FailureKind::Boost(e.to_string()))?;
                    kernel_sims += 1;
                    checkpoints.push((key, ckpt));
                }
                let (_, ckpt) = checkpoints
                    .iter()
                    .find(|(k, _)| *k == key)
                    .expect("checkpoint inserted above");
                BootRequest::new(&scenario)
                    .config(*cfg)
                    .prepared(&pre)
                    .machine_builder(&mut *builder)
                    .resume(ckpt)
            } else {
                kernel_sims += 1;
                BootRequest::new(&scenario)
                    .config(*cfg)
                    .prepared(&pre)
                    .machine_builder(&mut *builder)
                    .run()
            };
            let boot = boot.map_err(|e| FailureKind::Boost(e.to_string()))?;
            peak_events = peak_events.max(boot.machine.event_queue_stats().peak_depth);
            builder.recycle(boot.machine);
            let report = boot.report;
            // A boot that never met its completion definition is a
            // reported failure, not a worker panic (`try_boot_time`).
            let boot_time = report
                .try_boot_time()
                .ok_or_else(|| FailureKind::Incomplete {
                    config: label.clone(),
                })?;
            samples.push(BootSample {
                config,
                boot_ns: boot_time.as_nanos(),
                quiesce_ns: report.quiesce_time.as_nanos(),
            });
            if spec.metrics {
                spans.push(
                    bb_core::boot_spans(&report)
                        .into_iter()
                        .map(|s| (s.name, s.end.since(s.start).as_nanos()))
                        .collect(),
                );
            }
        }
        Ok::<_, FailureKind>((samples, spans, kernel_sims, peak_events))
    }));
    let elapsed = started.elapsed();

    let fail = |kind| Err(JobFailure { job, seed, kind });
    match outcome {
        Err(payload) => fail(FailureKind::Panic(panic_message(payload))),
        Ok(Err(kind)) => fail(kind),
        Ok(Ok((samples, spans, kernel_sims, peak_events))) => {
            if let Some(deadline) = spec.deadline {
                if elapsed > deadline {
                    return fail(FailureKind::DeadlineExceeded { elapsed });
                }
            }
            Ok(JobOutput {
                job,
                seed,
                samples,
                spans,
                kernel_sims,
                peak_events,
                elapsed,
            })
        }
    }
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CellSpec;
    use bb_core::BbConfig;
    use bb_workloads::{profiles, TizenParams};

    fn tiny_spec(seeds: impl IntoIterator<Item = u64>) -> SweepSpec {
        SweepSpec::new().cell(
            CellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds(seeds)
            .conventional_vs_bb(),
        )
    }

    #[test]
    fn sweep_completes_and_counts_jobs() {
        let spec = tiny_spec([1, 2, 3]);
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(2));
        assert_eq!(outcome.stats.jobs, 3);
        assert_eq!(outcome.stats.workers, 2);
        assert_eq!(outcome.report.total_boots, 6);
        assert!(outcome.report.failures.is_empty());
        let jobs_done: usize = outcome.stats.per_worker.iter().map(|w| w.jobs).sum();
        assert_eq!(jobs_done, 3);
        assert!(outcome.stats.summary().contains("pool: 2 workers"));
        // The event-queue high-water mark made it up from the machines.
        assert!(outcome.stats.peak_events > 0);
        assert!(outcome
            .stats
            .summary()
            .contains("peak simulator event-queue depth"));
    }

    #[test]
    fn zero_deadline_fails_every_job_but_sweep_survives() {
        let spec = tiny_spec([1, 2]).deadline(Duration::ZERO);
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(2));
        assert_eq!(outcome.report.failures.len(), 2);
        assert_eq!(outcome.report.total_boots, 0);
        assert!(outcome
            .report
            .failures
            .iter()
            .all(|f| f.reason == "deadline exceeded"));
    }

    #[test]
    fn incomplete_boot_is_a_reported_failure_not_a_panic() {
        use bb_init::ServiceBody;
        use bb_sim::{FlagId, Op};
        use bb_workloads::tv_scenario_with;

        let mut scenario = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams {
                services: 24,
                ..TizenParams::open_source()
            },
        );
        // Deadlock the completion unit: its body waits on the
        // boot-complete gate (flag 0, the first flag the executor
        // creates), which in turn waits on this unit's readiness. With
        // no start timeout the boot can never complete.
        let name = scenario.completion[0].clone();
        let exec = scenario
            .units
            .iter()
            .find(|u| u.name == name)
            .and_then(|u| u.exec.exec_start.clone())
            .expect("completion unit has an ExecStart");
        scenario.workloads.insert(
            exec,
            ServiceBody {
                pre_ready: vec![Op::WaitFlag(FlagId::from_raw(0))],
                post_ready: Vec::new(),
            },
        );

        let spec = SweepSpec::new().cell(
            CellSpec::fixed("hung", scenario)
                .seeds([0, 1])
                .conventional_vs_bb(),
        );
        let outcome = run_sweep(&spec, &PoolConfig::with_workers(2));
        assert_eq!(outcome.report.total_boots, 0);
        assert_eq!(outcome.report.failures.len(), 2);
        assert!(outcome
            .report
            .failures
            .iter()
            .all(|f| f.reason == "incomplete boot: conventional"));
    }

    /// The acceptance property of checkpoint-forked sweeps: JSON
    /// byte-identical to the unforked sweep, shared kernel phase
    /// simulated once per prefix key per job.
    #[test]
    fn forked_sweep_is_byte_identical_and_simulates_the_kernel_once() {
        let spec = tiny_spec([1, 2]);
        let plain = run_sweep(&spec, &PoolConfig::with_workers(2));
        let forked = run_sweep(&spec.clone().with_fork(true), &PoolConfig::with_workers(2));
        assert_eq!(plain.report.to_json(), forked.report.to_json());
        // conventional vs bb differ in every prefix feature → 2 keys
        // per job; the plain sweep simulates the kernel per boot.
        assert_eq!(plain.stats.kernel_sims, 4);
        assert_eq!(forked.stats.kernel_sims, 4);

        // A config axis that shares one prefix key forks for real:
        // full BB vs BB-without-bb_group boot the same kernel.
        let shared_prefix = SweepSpec::new().cell(
            CellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds([1, 2])
            .config("bb", BbConfig::full())
            .config(
                "bb-no-group",
                BbConfig {
                    bb_group: false,
                    ..BbConfig::full()
                },
            ),
        );
        let plain = run_sweep(&shared_prefix, &PoolConfig::with_workers(2));
        let forked = run_sweep(
            &shared_prefix.clone().with_fork(true),
            &PoolConfig::with_workers(2),
        );
        assert_eq!(plain.report.to_json(), forked.report.to_json());
        assert_eq!(plain.stats.kernel_sims, 4, "2 jobs x 2 configs");
        assert_eq!(forked.stats.kernel_sims, 2, "2 jobs x 1 shared prefix");
        assert!(forked.stats.summary().contains("kernel phase simulated"));
    }

    #[test]
    fn pool_config_default_is_at_least_one_worker() {
        assert!(PoolConfig::default().workers >= 1);
        assert_eq!(PoolConfig::with_workers(0).workers, 1);
    }
}
