//! Streaming aggregation of sweep results.
//!
//! The [`Aggregator`] consumes job results from the pool's channel as
//! they arrive (any order) and stores them into slots addressed by
//! `(cell, seed_idx)`. [`Aggregator::finalize`] then computes all
//! statistics by walking the slots in deterministic order — so the
//! resulting [`SweepReport`] (and its JSON form) is byte-identical for
//! any worker count.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::pool::{JobFailure, JobOutput};
use crate::spec::SweepSpec;

/// Accumulates job results into seed-addressed slots.
#[derive(Debug)]
pub struct Aggregator {
    cells: Vec<CellSlots>,
    failures: Vec<(usize, usize, u64, String)>, // (cell, seed_idx, seed, reason)
}

/// One boot's `(span name, duration ns)` lists, one list per config.
type ConfigSpans = Vec<Vec<(String, u64)>>;

#[derive(Debug)]
struct CellSlots {
    label: String,
    config_labels: Vec<String>,
    seeds: Vec<u64>,
    /// Per seed slot: boot nanoseconds per config, once the job lands.
    boots: Vec<Option<Vec<u64>>>,
    /// Per seed slot: `(span name, duration ns)` per config. Stays
    /// `None` unless the sweep collects metrics.
    spans: Vec<Option<ConfigSpans>>,
}

impl Aggregator {
    /// Allocates slots for every `(cell, seed)` of `spec`.
    pub fn new(spec: &SweepSpec) -> Self {
        Aggregator {
            cells: spec
                .cells
                .iter()
                .map(|c| CellSlots {
                    label: c.label.clone(),
                    config_labels: c.configs.iter().map(|(l, _)| l.clone()).collect(),
                    seeds: c.seeds.clone(),
                    boots: vec![None; c.seeds.len()],
                    spans: vec![None; c.seeds.len()],
                })
                .collect(),
            failures: Vec::new(),
        }
    }

    /// Accepts one pool message, in arrival (nondeterministic) order.
    pub fn accept(&mut self, msg: Result<JobOutput, JobFailure>) {
        match msg {
            Ok(out) => {
                let cell = &mut self.cells[out.job.cell];
                debug_assert!(cell.boots[out.job.seed_idx].is_none(), "slot filled twice");
                let mut by_config = vec![0u64; cell.config_labels.len()];
                for s in &out.samples {
                    by_config[s.config] = s.boot_ns;
                }
                cell.boots[out.job.seed_idx] = Some(by_config);
                if !out.spans.is_empty() {
                    cell.spans[out.job.seed_idx] = Some(out.spans);
                }
            }
            Err(fail) => {
                self.failures.push((
                    fail.job.cell,
                    fail.job.seed_idx,
                    fail.seed,
                    fail.kind.reason(),
                ));
            }
        }
    }

    /// Results accepted so far (filled slots plus failures) — the
    /// service's progress signal for [`crate::FleetService::poll`].
    pub fn accepted(&self) -> usize {
        let filled: usize = self
            .cells
            .iter()
            .map(|c| c.boots.iter().filter(|b| b.is_some()).count())
            .sum();
        filled + self.failures.len()
    }

    /// Computes the final report, walking slots in deterministic order.
    pub fn finalize(self) -> SweepReport {
        let Aggregator {
            cells: cell_slots,
            mut failures,
        } = self;
        // Failure order must not depend on scheduling.
        failures.sort();
        let failures = failures
            .into_iter()
            .map(|(cell, _, seed, reason)| FailureReport {
                cell: cell_slots[cell].label.clone(),
                seed,
                reason,
            })
            .collect();

        let mut total_boots = 0;
        let cells = cell_slots
            .iter()
            .map(|cell| {
                let completed = cell.boots.iter().flatten().count();
                let baseline = cell
                    .config_labels
                    .iter()
                    .position(|l| l == "conventional")
                    .and_then(|ci| mean_of(cell, ci));
                let configs = cell
                    .config_labels
                    .iter()
                    .enumerate()
                    .map(|(ci, label)| {
                        // Samples in seed order (slot order), skipping
                        // failed slots.
                        let samples: Vec<u64> = cell
                            .boots
                            .iter()
                            .flatten()
                            .map(|by_config| by_config[ci])
                            .collect();
                        total_boots += samples.len();
                        config_stats(label, &samples, label != "conventional", baseline)
                    })
                    .collect();
                CellReport {
                    label: cell.label.clone(),
                    seeds: cell.seeds.len(),
                    completed,
                    configs,
                }
            })
            .collect();

        let metrics = metrics_of(&cell_slots);

        SweepReport {
            cells,
            failures,
            total_boots,
            metrics,
        }
    }
}

/// Aggregates span durations across all filled slots, walking cells,
/// configs, and seed slots in deterministic order. `None` when no slot
/// carries span data (metrics collection off).
fn metrics_of(cell_slots: &[CellSlots]) -> Option<MetricsReport> {
    if cell_slots
        .iter()
        .all(|c| c.spans.iter().all(Option::is_none))
    {
        return None;
    }
    let cells = cell_slots
        .iter()
        .map(|cell| CellMetrics {
            label: cell.label.clone(),
            configs: cell
                .config_labels
                .iter()
                .enumerate()
                .map(|(ci, label)| {
                    // Span durations keyed by name, accumulated in seed
                    // (slot) order so arrival order cannot leak in.
                    let mut by_span: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
                    for per_config in cell.spans.iter().flatten() {
                        for (name, dur) in &per_config[ci] {
                            by_span.entry(name).or_default().push(*dur);
                        }
                    }
                    ConfigMetrics {
                        label: label.clone(),
                        spans: by_span
                            .into_iter()
                            .map(|(name, mut durs)| {
                                durs.sort_unstable();
                                SpanStats {
                                    name: name.to_owned(),
                                    count: durs.len(),
                                    p50_ns: percentile(&durs, 50),
                                    p95_ns: percentile(&durs, 95),
                                    p99_ns: percentile(&durs, 99),
                                }
                            })
                            .collect(),
                    }
                })
                .collect(),
        })
        .collect();
    Some(MetricsReport { cells })
}

fn mean_of(cell: &CellSlots, config: usize) -> Option<f64> {
    let samples: Vec<u64> = cell
        .boots
        .iter()
        .flatten()
        .map(|by_config| by_config[config])
        .collect();
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().map(|&n| n as f64).sum::<f64>() / samples.len() as f64)
    }
}

fn config_stats(
    label: &str,
    samples: &[u64],
    compare_to_baseline: bool,
    baseline_mean_ns: Option<f64>,
) -> ConfigStats {
    let count = samples.len();
    if count == 0 {
        return ConfigStats {
            label: label.to_owned(),
            count,
            mean_ns: 0.0,
            stddev_ns: 0.0,
            min_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            saving_ms: None,
            saving_pct: None,
        };
    }
    let mean_ns = samples.iter().map(|&n| n as f64).sum::<f64>() / count as f64;
    let var = samples
        .iter()
        .map(|&n| {
            let d = n as f64 - mean_ns;
            d * d
        })
        .sum::<f64>()
        / count as f64;
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let (saving_ms, saving_pct) = match baseline_mean_ns {
        Some(base) if compare_to_baseline && base > 0.0 => (
            Some((base - mean_ns) / 1e6),
            Some(100.0 * (1.0 - mean_ns / base)),
        ),
        _ => (None, None),
    };
    ConfigStats {
        label: label.to_owned(),
        count,
        mean_ns,
        stddev_ns: var.sqrt(),
        min_ns: sorted[0],
        max_ns: sorted[count - 1],
        p50_ns: percentile(&sorted, 50),
        p95_ns: percentile(&sorted, 95),
        p99_ns: percentile(&sorted, 99),
        saving_ms,
        saving_pct,
    }
}

/// Nearest-rank percentile on a sorted slice (integer nanoseconds, so
/// no float ambiguity enters the deterministic output).
fn percentile(sorted: &[u64], p: u32) -> u64 {
    debug_assert!(!sorted.is_empty() && (1..=100).contains(&p));
    let rank = (p as usize * sorted.len()).div_ceil(100);
    sorted[rank - 1]
}

/// Aggregated statistics for one config within one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigStats {
    /// Config label.
    pub label: String,
    /// Completed boots.
    pub count: usize,
    /// Mean boot time, simulated ns.
    pub mean_ns: f64,
    /// Population standard deviation, simulated ns.
    pub stddev_ns: f64,
    /// Fastest boot, simulated ns.
    pub min_ns: u64,
    /// Slowest boot, simulated ns.
    pub max_ns: u64,
    /// Median (nearest-rank), simulated ns.
    pub p50_ns: u64,
    /// 95th percentile (nearest-rank), simulated ns.
    pub p95_ns: u64,
    /// 99th percentile (nearest-rank), simulated ns.
    pub p99_ns: u64,
    /// Mean saving vs the cell's `"conventional"` config, ms.
    pub saving_ms: Option<f64>,
    /// Mean saving vs `"conventional"`, percent.
    pub saving_pct: Option<f64>,
}

/// Aggregated results for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell label.
    pub label: String,
    /// Seed slots specified.
    pub seeds: usize,
    /// Seed slots that completed (rest failed).
    pub completed: usize,
    /// Per-config statistics, in config order.
    pub configs: Vec<ConfigStats>,
}

/// One failed job in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// Cell label.
    pub cell: String,
    /// Seed that was running.
    pub seed: u64,
    /// Stable reason line (no host-time content).
    pub reason: String,
}

/// Aggregated span statistics for one config within one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Span name (e.g. `unit/dbus.service`, `kernel/driver-probe`).
    pub name: String,
    /// Samples aggregated (one per completed boot emitting the span).
    pub count: usize,
    /// Median duration (nearest-rank), simulated ns.
    pub p50_ns: u64,
    /// 95th percentile duration, simulated ns.
    pub p95_ns: u64,
    /// 99th percentile duration, simulated ns.
    pub p99_ns: u64,
}

/// Span statistics for one config of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigMetrics {
    /// Config label.
    pub label: String,
    /// Per-span statistics, sorted by span name.
    pub spans: Vec<SpanStats>,
}

/// Span statistics for one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMetrics {
    /// Cell label.
    pub label: String,
    /// Per-config statistics, in config order.
    pub configs: Vec<ConfigMetrics>,
}

/// Aggregated telemetry spans across a sweep (`bb-metrics-v1`).
///
/// Built in slot order by [`Aggregator::finalize`], so — like the
/// [`SweepReport`] itself — its JSON form is byte-identical for any
/// worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Per-cell span statistics, in spec order.
    pub cells: Vec<CellMetrics>,
}

impl MetricsReport {
    /// Serializes as deterministic JSON stamped `bb-metrics-v1`.
    pub fn to_json(&self) -> String {
        let mut out = json::open_document(json::SCHEMA_METRICS);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": \"");
            out.push_str(&json::escape(&cell.label));
            out.push_str("\", \"configs\": [");
            for (j, c) in cell.configs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"label\": \"");
                out.push_str(&json::escape(&c.label));
                out.push_str("\", \"spans\": [");
                for (k, s) in c.spans.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n        {{\"name\": \"{}\", \"count\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}",
                        json::escape(&s.name),
                        s.count,
                        json::ms(s.p50_ns as f64),
                        json::ms(s.p95_ns as f64),
                        json::ms(s.p99_ns as f64),
                    ));
                }
                if !c.spans.is_empty() {
                    out.push_str("\n      ");
                }
                out.push_str("]}");
            }
            if !cell.configs.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// The deterministic output of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-cell results, in spec order.
    pub cells: Vec<CellReport>,
    /// Failed jobs, sorted by (cell index, seed index).
    pub failures: Vec<FailureReport>,
    /// Completed boots across all cells.
    pub total_boots: usize,
    /// Aggregated span telemetry; `Some` only when the sweep ran with
    /// [`SweepSpec::with_metrics`](crate::SweepSpec::with_metrics).
    pub metrics: Option<MetricsReport>,
}

impl SweepReport {
    /// Serializes the report as deterministic JSON: fixed key order,
    /// fixed `{:.3}` ms floats, no host-time fields. Byte-identical for
    /// any worker count.
    pub fn to_json(&self) -> String {
        let mut out = json::open_document(json::SCHEMA_FLEET);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": \"");
            out.push_str(&json::escape(&cell.label));
            out.push_str(&format!(
                "\", \"seeds\": {}, \"completed\": {}, \"configs\": [",
                cell.seeds, cell.completed
            ));
            for (j, c) in cell.configs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"label\": \"");
                out.push_str(&json::escape(&c.label));
                out.push_str(&format!(
                    "\", \"count\": {}, \"mean_ms\": {}, \"stddev_ms\": {}, \"min_ms\": {}, \"max_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}",
                    c.count,
                    json::ms(c.mean_ns),
                    json::ms(c.stddev_ns),
                    json::ms(c.min_ns as f64),
                    json::ms(c.max_ns as f64),
                    json::ms(c.p50_ns as f64),
                    json::ms(c.p95_ns as f64),
                    json::ms(c.p99_ns as f64),
                ));
                if let (Some(ms), Some(pct)) = (c.saving_ms, c.saving_pct) {
                    out.push_str(&format!(
                        ", \"saving_ms\": {:.3}, \"saving_pct\": {:.3}",
                        ms, pct
                    ));
                }
                out.push('}');
            }
            if !cell.configs.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"cell\": \"{}\", \"seed\": {}, \"reason\": \"{}\"}}",
                json::escape(&f.cell),
                f.seed,
                json::escape(&f.reason)
            ));
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"total_boots\": {}\n}}\n",
            self.total_boots
        ));
        out
    }

    /// Human-readable table for terminals.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cell in &self.cells {
            let _ = writeln!(
                out,
                "{} ({} of {} seeds completed)",
                cell.label, cell.completed, cell.seeds
            );
            let _ = writeln!(
                out,
                "  {:<16} {:>6} {:>10} {:>9} {:>10} {:>10} {:>10}  saving",
                "config", "boots", "mean", "stddev", "p50", "p95", "p99"
            );
            for c in &cell.configs {
                let saving = match (c.saving_ms, c.saving_pct) {
                    (Some(ms), Some(pct)) => format!("{ms:.0} ms ({pct:.1}%)"),
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "  {:<16} {:>6} {:>8.0}ms {:>7.1}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms  {}",
                    c.label,
                    c.count,
                    c.mean_ns / 1e6,
                    c.stddev_ns / 1e6,
                    c.p50_ns as f64 / 1e6,
                    c.p95_ns as f64 / 1e6,
                    c.p99_ns as f64 / 1e6,
                    saving
                );
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out, "failures ({}):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(out, "  {} seed {}: {}", f.cell, f.seed, f.reason);
            }
        }
        let _ = writeln!(out, "total boots aggregated: {}", self.total_boots);
        out
    }

    /// Compares this report against a previously saved JSON baseline.
    /// Entries whose mean drifted more than `tolerance_pct` percent are
    /// flagged as regressions (slower) or improvements (faster).
    pub fn diff_baseline(
        &self,
        baseline_json: &str,
        tolerance_pct: f64,
    ) -> Result<Vec<DiffEntry>, json::JsonError> {
        let baseline = json::parse(baseline_json)?;
        let rows = self.cells.iter().flat_map(|cell| {
            cell.configs
                .iter()
                .map(move |cfg| (cell.label.clone(), cfg.label.clone(), cfg.mean_ns / 1e6))
        });
        diff_rows(rows, &baseline, tolerance_pct)
    }
}

/// Compares a saved `bb-fleet-v1` document against a baseline document
/// without reconstructing the report — what `bbsim submit --baseline`
/// runs on the streamed artifact. Means are read back from the
/// document's fixed `{:.3}` formatting, so a verdict sitting exactly
/// on the tolerance edge can differ from the in-process
/// [`SweepReport::diff_baseline`] by one rounding ulp.
pub fn diff_baseline_json(
    current_json: &str,
    baseline_json: &str,
    tolerance_pct: f64,
) -> Result<Vec<DiffEntry>, json::JsonError> {
    let current = json::parse(current_json)?;
    let baseline = json::parse(baseline_json)?;
    let cells = current
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or(json::JsonError {
            pos: 0,
            msg: "report has no cells array".into(),
        })?;
    let mut rows = Vec::new();
    for cell in cells {
        let label = cell
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned();
        for cfg in cell.get("configs").and_then(Json::as_arr).unwrap_or(&[]) {
            let cfg_label = cfg
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            let mean_ms = cfg.get("mean_ms").and_then(Json::as_f64).unwrap_or(0.0);
            rows.push((label.clone(), cfg_label, mean_ms));
        }
    }
    diff_rows(rows.into_iter(), &baseline, tolerance_pct)
}

/// The shared comparison: each row is `(cell label, config label,
/// current mean ms)`, looked up against the baseline document's cells.
fn diff_rows(
    rows: impl Iterator<Item = (String, String, f64)>,
    baseline: &Json,
    tolerance_pct: f64,
) -> Result<Vec<DiffEntry>, json::JsonError> {
    let cells = baseline
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or(json::JsonError {
            pos: 0,
            msg: "baseline has no cells array".into(),
        })?;
    let mut diffs = Vec::new();
    for (cell_label, cfg_label, current_ms) in rows {
        let base_mean_ms = cells
            .iter()
            .find(|c| c.get("label").and_then(Json::as_str) == Some(cell_label.as_str()))
            .and_then(|bc| bc.get("configs"))
            .and_then(Json::as_arr)
            .and_then(|cfgs| {
                cfgs.iter()
                    .find(|c| c.get("label").and_then(Json::as_str) == Some(cfg_label.as_str()))
            })
            .and_then(|c| c.get("mean_ms"))
            .and_then(Json::as_f64);
        diffs.push(match base_mean_ms {
            None => DiffEntry {
                cell: cell_label,
                config: cfg_label,
                baseline_ms: None,
                current_ms,
                delta_pct: None,
                verdict: DiffVerdict::NewCell,
            },
            Some(base) => {
                let delta_pct = if base > 0.0 {
                    100.0 * (current_ms - base) / base
                } else {
                    0.0
                };
                let verdict = if delta_pct > tolerance_pct {
                    DiffVerdict::Regression
                } else if delta_pct < -tolerance_pct {
                    DiffVerdict::Improvement
                } else {
                    DiffVerdict::Unchanged
                };
                DiffEntry {
                    cell: cell_label,
                    config: cfg_label,
                    baseline_ms: Some(base),
                    current_ms,
                    delta_pct: Some(delta_pct),
                    verdict,
                }
            }
        });
    }
    Ok(diffs)
}

/// How one (cell, config) mean compares against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Within tolerance.
    Unchanged,
    /// Slower than baseline beyond tolerance.
    Regression,
    /// Faster than baseline beyond tolerance.
    Improvement,
    /// Not present in the baseline.
    NewCell,
}

/// One row of a baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Cell label.
    pub cell: String,
    /// Config label.
    pub config: String,
    /// Baseline mean, ms (None if the baseline lacks this entry).
    pub baseline_ms: Option<f64>,
    /// Current mean, ms.
    pub current_ms: f64,
    /// Relative drift, percent (None if no baseline entry).
    pub delta_pct: Option<f64>,
    /// Classification at the requested tolerance.
    pub verdict: DiffVerdict,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}: ", self.cell, self.config)?;
        match (self.baseline_ms, self.delta_pct) {
            (Some(base), Some(delta)) => write!(
                f,
                "{:.1} -> {:.1} ms ({:+.2}%) {:?}",
                base, self.current_ms, delta, self.verdict
            ),
            _ => write!(f, "{:.1} ms (no baseline)", self.current_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{BootSample, FailureKind};
    use crate::spec::{CellSpec, Job};
    use bb_workloads::{profiles, TizenParams};

    fn two_seed_spec() -> SweepSpec {
        SweepSpec::new().cell(
            CellSpec::tizen("cell-a", profiles::ue48h6200(), TizenParams::open_source())
                .seeds([5, 6])
                .conventional_vs_bb(),
        )
    }

    fn output(cell: usize, seed_idx: usize, seed: u64, boots: &[u64]) -> JobOutput {
        JobOutput {
            job: Job { cell, seed_idx },
            seed,
            samples: boots
                .iter()
                .enumerate()
                .map(|(config, &boot_ns)| BootSample {
                    config,
                    boot_ns,
                    quiesce_ns: boot_ns,
                })
                .collect(),
            spans: Vec::new(),
            kernel_sims: 0,
            peak_events: 0,
            deduped: 0,
            elapsed: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn aggregation_is_order_independent() {
        let spec = two_seed_spec();
        let mut a = Aggregator::new(&spec);
        a.accept(Ok(output(0, 0, 5, &[8_000_000_000, 3_000_000_000])));
        a.accept(Ok(output(0, 1, 6, &[9_000_000_000, 3_500_000_000])));
        let mut b = Aggregator::new(&spec);
        b.accept(Ok(output(0, 1, 6, &[9_000_000_000, 3_500_000_000])));
        b.accept(Ok(output(0, 0, 5, &[8_000_000_000, 3_000_000_000])));
        let (ra, rb) = (a.finalize(), b.finalize());
        assert_eq!(ra, rb);
        assert_eq!(ra.to_json(), rb.to_json());
    }

    #[test]
    fn stats_and_savings_compute() {
        let spec = two_seed_spec();
        let mut agg = Aggregator::new(&spec);
        agg.accept(Ok(output(0, 0, 5, &[8_000_000_000, 3_000_000_000])));
        agg.accept(Ok(output(0, 1, 6, &[10_000_000_000, 3_000_000_000])));
        let report = agg.finalize();
        let conv = &report.cells[0].configs[0];
        let bb = &report.cells[0].configs[1];
        assert_eq!(conv.count, 2);
        assert_eq!(conv.mean_ns, 9.0e9);
        assert_eq!(conv.stddev_ns, 1.0e9);
        assert_eq!(conv.min_ns, 8_000_000_000);
        assert_eq!(conv.max_ns, 10_000_000_000);
        assert_eq!(conv.p50_ns, 8_000_000_000);
        assert_eq!(conv.p99_ns, 10_000_000_000);
        assert!(conv.saving_ms.is_none(), "baseline has no saving vs itself");
        assert_eq!(bb.saving_ms, Some(6000.0));
        let pct = bb.saving_pct.unwrap();
        assert!((pct - 66.666).abs() < 0.01, "{pct}");
    }

    #[test]
    fn failures_sort_deterministically_and_keep_slots_empty() {
        let spec = two_seed_spec();
        let mut agg = Aggregator::new(&spec);
        agg.accept(Err(JobFailure {
            job: Job {
                cell: 0,
                seed_idx: 1,
            },
            seed: 6,
            kind: FailureKind::Panic("boom".into()),
        }));
        agg.accept(Ok(output(0, 0, 5, &[8_000_000_000, 3_000_000_000])));
        let report = agg.finalize();
        assert_eq!(report.cells[0].completed, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].reason, "panic: boom");
        assert_eq!(report.total_boots, 2);
    }

    #[test]
    fn json_output_parses_back() {
        let spec = two_seed_spec();
        let mut agg = Aggregator::new(&spec);
        agg.accept(Ok(output(0, 0, 5, &[8_000_000_000, 3_000_000_000])));
        agg.accept(Ok(output(0, 1, 6, &[9_000_000_000, 3_200_000_000])));
        let report = agg.finalize();
        let parsed = json::parse(&report.to_json()).expect("sweep JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("bb-fleet-v1")
        );
        assert_eq!(parsed.get("total_boots").and_then(Json::as_f64), Some(4.0));
        let cells = parsed.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 1);
        let mean = cells[0].get("configs").and_then(Json::as_arr).unwrap()[0]
            .get("mean_ms")
            .and_then(Json::as_f64)
            .unwrap();
        assert!((mean - 8500.0).abs() < 0.001);
    }

    #[test]
    fn baseline_diff_classifies_drift() {
        let spec = two_seed_spec();
        let mut agg = Aggregator::new(&spec);
        agg.accept(Ok(output(0, 0, 5, &[8_000_000_000, 3_000_000_000])));
        agg.accept(Ok(output(0, 1, 6, &[9_000_000_000, 3_200_000_000])));
        let report = agg.finalize();
        let baseline = report.to_json();

        // Same data → everything unchanged.
        let diffs = report.diff_baseline(&baseline, 1.0).unwrap();
        assert!(diffs.iter().all(|d| d.verdict == DiffVerdict::Unchanged));

        // A much faster baseline → we look like a regression.
        let fast = baseline.replace("\"mean_ms\": 8500.000", "\"mean_ms\": 4000.000");
        let diffs = report.diff_baseline(&fast, 1.0).unwrap();
        assert_eq!(diffs[0].verdict, DiffVerdict::Regression);
        assert!(diffs[0].to_string().contains('%'));

        // Unknown baseline cell → NewCell.
        let diffs = report.diff_baseline("{\"cells\": []}", 1.0).unwrap();
        assert!(diffs.iter().all(|d| d.verdict == DiffVerdict::NewCell));

        // Garbage baseline → error.
        assert!(report.diff_baseline("not json", 1.0).is_err());
    }

    #[test]
    fn span_metrics_aggregate_in_slot_order() {
        let spec = two_seed_spec();
        let with_spans = |mut out: JobOutput, ns: u64| {
            out.spans = vec![
                vec![("unit/a.service".to_owned(), ns)],
                vec![("unit/a.service".to_owned(), ns / 2)],
            ];
            out
        };
        let mut a = Aggregator::new(&spec);
        a.accept(Ok(with_spans(
            output(0, 0, 5, &[8e9 as u64, 3e9 as u64]),
            100,
        )));
        a.accept(Ok(with_spans(
            output(0, 1, 6, &[9e9 as u64, 4e9 as u64]),
            200,
        )));
        let mut b = Aggregator::new(&spec);
        b.accept(Ok(with_spans(
            output(0, 1, 6, &[9e9 as u64, 4e9 as u64]),
            200,
        )));
        b.accept(Ok(with_spans(
            output(0, 0, 5, &[8e9 as u64, 3e9 as u64]),
            100,
        )));
        let (ra, rb) = (a.finalize(), b.finalize());

        // Same metrics (and bytes) regardless of arrival order.
        assert_eq!(ra.metrics, rb.metrics);
        let m = ra.metrics.as_ref().expect("span data present");
        assert_eq!(m.to_json(), rb.metrics.as_ref().unwrap().to_json());
        let conv = &m.cells[0].configs[0].spans[0];
        assert_eq!(
            (conv.name.as_str(), conv.count, conv.p50_ns, conv.p99_ns),
            ("unit/a.service", 2, 100, 200)
        );

        // The metrics document is stamped and parses back.
        let parsed = json::parse(&m.to_json()).expect("metrics JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("bb-metrics-v1")
        );

        // No span data → no metrics report.
        let mut plain = Aggregator::new(&spec);
        plain.accept(Ok(output(0, 0, 5, &[8e9 as u64, 3e9 as u64])));
        assert!(plain.finalize().metrics.is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 95), 95);
        assert_eq!(percentile(&sorted, 99), 99);
        assert_eq!(percentile(&[42], 99), 42);
    }
}
