//! Hand-rolled JSON: an explicit writer and a minimal recursive-descent
//! parser.
//!
//! Same policy as `bb-init::preparse`: the on-disk format of a sweep is
//! an auditable artifact, so the codec is written out longhand instead
//! of pulled in via serde (DESIGN.md §4 keeps serde out of the
//! dependency tree on purpose). The writer is deterministic — object
//! keys are emitted in a fixed order by the caller and floats use fixed
//! `{:.3}` formatting — which is what makes sweep output byte-stable
//! across worker counts and comparable against saved baselines.

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------

/// Schema stamp of the sweep report ([`crate::SweepReport::to_json`]).
pub const SCHEMA_FLEET: &str = "bb-fleet-v1";
/// Schema stamp of the chaos report ([`crate::ChaosReport::to_json`]).
pub const SCHEMA_CHAOS: &str = "bb-fleet-chaos-v2";
/// Schema stamp of the sweep metrics document
/// ([`crate::MetricsReport::to_json`]).
pub const SCHEMA_METRICS: &str = "bb-metrics-v1";
/// Schema stamp of `bbsim boot --profile --json` output.
pub const SCHEMA_PROFILE: &str = "bb-profile-v1";
/// Schema stamp of `bbsim boot --json` output.
pub const SCHEMA_BOOT: &str = "bbsim-boot-v1";
/// Schema stamp of snapshot-derived documents: `bbsim suspend --json`
/// and the `BENCH_snapshot.json` perf baseline.
pub const SCHEMA_SNAPSHOT: &str = "bb-snapshot-v1";
/// Schema stamp of the scheduler hot-path perf baseline
/// (`BENCH_hotpath.json`, written by `cargo bench --bench hotpath`).
pub const SCHEMA_HOTPATH: &str = "bb-hotpath-v1";
/// Schema stamp of the sweep-throughput perf baseline
/// (`BENCH_sweep.json`, written by `cargo bench --bench sweep`).
pub const SCHEMA_SWEEP: &str = "bb-sweep-v1";
/// Schema stamp of every `bbsim serve` wire envelope (requests are
/// plain NDJSON; every response carries this stamp first).
pub const SCHEMA_SERVE: &str = "bb-serve-v1";
/// Schema stamp of the service observability document
/// ([`crate::ServiceStats::to_json`]).
pub const SCHEMA_SERVE_STATS: &str = "bb-serve-stats-v1";

/// Opens a top-level JSON document with its version stamp. Every
/// emitter in the workspace goes through this helper, so the `"schema"`
/// field is always present, always first, and always spelled the same
/// way.
pub fn open_document(schema: &str) -> String {
    format!("{{\n  \"schema\": \"{}\",\n", escape(schema))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanosecond quantity as milliseconds with fixed `{:.3}`
/// precision — the one float format the sweep codec uses, so output is
/// reproducible byte for byte.
pub fn ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order (no hashing), so
/// round-tripping is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64; the sweep codec never exceeds 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What was expected or found.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(pos: usize, msg: &str) -> JsonError {
    JsonError {
        pos,
        msg: msg.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected {:?}", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected {lit}")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| err(*pos, "bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 character.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "bad utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_document_stamps_the_schema_first() {
        let doc = format!("{}  \"x\": 1\n}}\n", open_document(SCHEMA_FLEET));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("bb-fleet-v1"));
        let Json::Obj(fields) = &v else { panic!() };
        assert_eq!(fields[0].0, "schema", "schema must be the first key");
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn ms_formatting_is_fixed_precision() {
        assert_eq!(ms(8_614_474_000.0), "8614.474");
        assert_eq!(ms(0.0), "0.000");
        assert_eq!(ms(1_500.0), "0.002"); // rounds
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn roundtrips_escaped_strings() {
        let original = "quote\" slash\\ newline\n tab\t";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
        let e = parse("[1, nope]").unwrap_err();
        assert!(e.pos > 0);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{e9}"));
        // Raw multi-byte characters pass through too.
        assert_eq!(parse("\"\u{e9}\"").unwrap().as_str(), Some("\u{e9}"));
    }
}
