//! The persistent fleet executor: a work-queue service behind the
//! one-shot sweep entry points and the `bbsim serve` daemon.
//!
//! A [`FleetService`] owns long-lived worker threads, a central bounded
//! work queue with per-client round-robin fairness, and one shared
//! [`FleetCache`] — so every ticket it executes shares compiled boot
//! plans, memoized scenarios, deduplicated boot outcomes, and kernel
//! checkpoints with every other ticket, across submissions and across
//! clients. This is the fleet-scale shape the paper's deployment story
//! implies: millions of near-identical boot jobs amortizing their
//! shared artifacts, not one process per sweep.
//!
//! The API is a ticketed work queue:
//!
//! * [`FleetService::submit`] enqueues a [`WorkItem`] (a plain or chaos
//!   sweep grid) for a client and returns a [`TicketId`], applying
//!   backpressure ([`SubmitError::Saturated`]) when the queue is full
//!   and per-client quotas ([`SubmitError::QuotaExceeded`]) when one
//!   client hoards the service.
//! * [`FleetService::poll`] reports ticket progress without blocking.
//! * [`FleetService::wait`] blocks until the ticket finalizes and
//!   returns its [`ServiceReport`].
//! * [`FleetService::cancel`] retracts a ticket: queued jobs are
//!   dropped, in-flight results discarded.
//! * [`FleetService::stats`] snapshots service-wide observability
//!   (rendered as the `bb-serve-stats-v1` document by
//!   [`ServiceStats::to_json`]).
//!
//! **Fairness** is round-robin over clients: the queue keeps one FIFO
//! lane per client and workers take one job from each non-empty lane in
//! turn, so a client submitting a 10,000-job grid cannot starve a
//! client submitting a 4-job one. Within a lane, jobs run in submission
//! (slot) order.
//!
//! **Determinism** is untouched by any of this: results are aggregated
//! per ticket into slots addressed by `(cell, seed_idx)` (chaos:
//! `(cell, plan, corruption, seed)`) and finalized in slot order, so a
//! ticket's report is byte-identical for any worker count, any client
//! interleaving, and any cache state. Only [`PoolStats`] /
//! [`ServiceStats`] — host-side observability, never part of a report —
//! can vary.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::aggregate::Aggregator;
use crate::chaos::{
    run_chaos_job, ChaosAggregator, ChaosJob, ChaosJobFailure, ChaosJobOutput, ChaosOutcome,
    ChaosSpec,
};
use crate::json;
use crate::pool::{
    lock, run_job, FleetCache, JobFailure, JobOutput, PoolStats, SweepOutcome, WorkerStats,
};
use crate::spec::{cell_fingerprint, Job, SweepSpec};
use bb_core::booster::Scenario;
use bb_core::{PlanCacheStats, PreParser};

/// Identifies a submitting client. The serve layer assigns one per
/// connection; in-process callers pick their own (quotas and fairness
/// are per-id).
pub type ClientId = u64;

/// Identifies a submitted work item, returned by
/// [`FleetService::submit`].
pub type TicketId = u64;

/// Sizing and admission policy for a [`FleetService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker thread count (at least 1).
    pub workers: usize,
    /// Maximum *jobs* queued across all clients before [`submit`]
    /// returns [`SubmitError::Saturated`] — the backpressure bound.
    ///
    /// [`submit`]: FleetService::submit
    pub queue_capacity: usize,
    /// Maximum unfinished tickets per client before [`submit`] returns
    /// [`SubmitError::QuotaExceeded`].
    ///
    /// [`submit`]: FleetService::submit
    pub max_pending_per_client: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 65_536,
            max_pending_per_client: 64,
        }
    }
}

impl ServiceConfig {
    /// The default policy with exactly `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            ..ServiceConfig::default()
        }
    }

    /// Unbounded admission — what the one-shot entry points
    /// ([`crate::run_sweep`], [`crate::run_chaos`]) run under: a single
    /// caller submitting a single ticket needs neither backpressure nor
    /// quotas, and a spec larger than any fixed queue bound must still
    /// run.
    pub fn one_shot(workers: usize) -> Self {
        ServiceConfig {
            workers: workers.max(1),
            queue_capacity: usize::MAX,
            max_pending_per_client: usize::MAX,
        }
    }
}

/// One submittable unit of fleet work.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A plain boot sweep (see [`SweepSpec`]).
    Sweep(SweepSpec),
    /// A fault-injection sweep (see [`ChaosSpec`]).
    Chaos(ChaosSpec),
}

/// A finalized ticket's result, matching the submitted [`WorkItem`]
/// kind.
#[derive(Debug)]
pub enum ServiceReport {
    /// Result of a [`WorkItem::Sweep`].
    Sweep(SweepOutcome),
    /// Result of a [`WorkItem::Chaos`].
    Chaos(ChaosOutcome),
}

/// Non-blocking ticket progress, from [`FleetService::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// No job has completed yet.
    Queued {
        /// Jobs the ticket expands to.
        total: usize,
    },
    /// Some jobs have completed.
    Running {
        /// Jobs completed (failed ones included).
        completed: usize,
        /// Jobs the ticket expands to.
        total: usize,
    },
    /// The report is ready; [`FleetService::wait`] returns immediately.
    Done,
    /// The ticket was cancelled; no report will arrive.
    Cancelled,
}

/// Why [`FleetService::submit`] rejected a work item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full — backpressure. Retry after draining.
    Saturated {
        /// Jobs currently queued service-wide.
        queued: usize,
        /// The configured bound ([`ServiceConfig::queue_capacity`]).
        capacity: usize,
        /// Jobs this item would have added.
        jobs: usize,
    },
    /// The client already has too many unfinished tickets.
    QuotaExceeded {
        /// Unfinished tickets the client holds.
        pending: usize,
        /// The configured bound
        /// ([`ServiceConfig::max_pending_per_client`]).
        quota: usize,
    },
    /// The service is shutting down and admits no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated {
                queued,
                capacity,
                jobs,
            } => write!(
                f,
                "queue saturated: {queued} job(s) queued of {capacity} capacity, \
                 submission needs {jobs}"
            ),
            SubmitError::QuotaExceeded { pending, quota } => write!(
                f,
                "client quota exceeded: {pending} unfinished ticket(s) of {quota} allowed"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

/// Why [`FleetService::wait`] returned no report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The ticket id was never issued, or its report was already
    /// collected.
    UnknownTicket,
    /// The ticket was cancelled.
    Cancelled,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::UnknownTicket => write!(f, "unknown ticket"),
            WaitError::Cancelled => write!(f, "ticket was cancelled"),
        }
    }
}

/// Service-wide observability counters, from [`FleetService::stats`].
/// Everything here is host-side: reports never depend on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker thread count.
    pub workers: usize,
    /// Distinct clients that have submitted work.
    pub clients: usize,
    /// Tickets admitted since the service started.
    pub tickets_submitted: u64,
    /// Tickets that finalized a report.
    pub tickets_completed: u64,
    /// Tickets cancelled before finalizing.
    pub tickets_cancelled: u64,
    /// Jobs executed (completed + failed, across all tickets).
    pub jobs_executed: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Deepest the queue has ever been.
    pub queue_peak: usize,
    /// Kernel-phase simulations executed across all sweep tickets.
    pub kernel_sims: u64,
    /// Boot plans compiled in the service's shared cache.
    pub plans_compiled: u64,
    /// Boots that reused an already-compiled plan.
    pub plan_cache_hits: u64,
    /// Boots served from the dedup cache — including *cross-client*
    /// hits, when one client's grid overlaps another's.
    pub cells_deduped: u64,
    /// Supervised respawns across all chaos tickets.
    pub restarts: u64,
    /// Artifact recoveries across all chaos tickets.
    pub recoveries: u64,
    /// Artifacts the integrity chain rejected across all chaos tickets.
    pub artifacts_rejected: u64,
}

impl ServiceStats {
    /// The `bb-serve-stats-v1` document: fixed key order, schema
    /// stamped first — how a running server is observed without
    /// restarting it.
    pub fn to_json(&self) -> String {
        let mut out = json::open_document(json::SCHEMA_SERVE_STATS);
        out.push_str(&format!(
            "  \"workers\": {},\n  \"clients\": {},\n  \"tickets\": {{\"submitted\": {}, \"completed\": {}, \"cancelled\": {}}},\n  \"jobs_executed\": {},\n  \"queue\": {{\"depth\": {}, \"peak\": {}}},\n  \"kernel_sims\": {},\n  \"plans_compiled\": {},\n  \"plan_cache_hits\": {},\n  \"cells_deduped\": {},\n  \"restarts\": {},\n  \"recoveries\": {},\n  \"artifacts_rejected\": {}\n}}\n",
            self.workers,
            self.clients,
            self.tickets_submitted,
            self.tickets_completed,
            self.tickets_cancelled,
            self.jobs_executed,
            self.queue_depth,
            self.queue_peak,
            self.kernel_sims,
            self.plans_compiled,
            self.plan_cache_hits,
            self.cells_deduped,
            self.restarts,
            self.recoveries,
            self.artifacts_rejected,
        ));
        out
    }
}

/// One queued job: `index` into its ticket's job list.
#[derive(Debug, Clone, Copy)]
struct Task {
    ticket: TicketId,
    index: usize,
}

/// A ticket's expanded execution plan, shared read-only with workers.
enum Plan {
    Sweep {
        spec: SweepSpec,
        shared: Vec<Option<(Arc<Scenario>, PreParser)>>,
        fps: Vec<(u64, bool)>,
        jobs: Vec<Job>,
    },
    Chaos {
        spec: ChaosSpec,
        jobs: Vec<ChaosJob>,
    },
}

/// A ticket's streaming aggregation state.
enum TicketAgg {
    Sweep(Aggregator),
    Chaos(ChaosAggregator),
}

/// One worker→service result message.
enum TicketMsg {
    Sweep(Result<JobOutput, JobFailure>),
    Chaos(Result<ChaosJobOutput, ChaosJobFailure>),
}

struct Ticket {
    client: ClientId,
    plan: Arc<Plan>,
    agg: Option<TicketAgg>,
    /// Jobs not yet accepted; 0 means finalized.
    remaining: usize,
    total: usize,
    cancelled: bool,
    report: Option<ServiceReport>,
    started: Instant,
    plans_before: PlanCacheStats,
    kernel_sims: usize,
    peak_events: usize,
    cells_deduped: usize,
    max_queue_depth: usize,
}

/// One client's FIFO lane of the central queue.
struct Lane {
    client: ClientId,
    tasks: VecDeque<Task>,
}

struct QueueState {
    lanes: Vec<Lane>,
    /// Round-robin cursor over lanes.
    next: usize,
    peak: usize,
    shutdown: bool,
}

impl QueueState {
    /// The lane for `client`, created on first submission. Lanes are
    /// never removed: the rotation stays stable and the cost is one
    /// empty `VecDeque` per client ever seen.
    fn lane(&mut self, client: ClientId) -> &mut Lane {
        if let Some(i) = self.lanes.iter().position(|l| l.client == client) {
            return &mut self.lanes[i];
        }
        self.lanes.push(Lane {
            client,
            tasks: VecDeque::new(),
        });
        self.lanes.last_mut().expect("just pushed")
    }

    /// Pops the next task round-robin across client lanes.
    fn pop(&mut self) -> Option<Task> {
        let n = self.lanes.len();
        for probe in 0..n {
            let i = (self.next + probe) % n;
            if let Some(task) = self.lanes[i].tasks.pop_front() {
                self.next = (i + 1) % n;
                return Some(task);
            }
        }
        None
    }
}

struct TicketTable {
    entries: HashMap<TicketId, Ticket>,
    /// Unfinished tickets per client (the quota counter).
    pending: HashMap<ClientId, usize>,
}

/// Cumulative service counters (see [`ServiceStats`]).
#[derive(Default)]
struct Totals {
    clients: HashSet<ClientId>,
    tickets_submitted: u64,
    tickets_completed: u64,
    tickets_cancelled: u64,
    jobs_executed: u64,
    kernel_sims: u64,
    cells_deduped: u64,
    restarts: u64,
    recoveries: u64,
    artifacts_rejected: u64,
}

struct Inner {
    workers: usize,
    queue_capacity: usize,
    quota: usize,
    cache: Arc<FleetCache>,
    queue: Mutex<QueueState>,
    /// Signals workers that the queue changed (paired with `queue`).
    work: Condvar,
    /// Mirror of total queued tasks, for lock-free depth sampling.
    queued: AtomicUsize,
    tickets: Mutex<TicketTable>,
    /// Signals waiters that a ticket finalized (paired with `tickets`).
    done: Condvar,
    next_ticket: AtomicU64,
    worker_stats: Mutex<Vec<WorkerStats>>,
    totals: Mutex<Totals>,
}

// Lock discipline: `queue`, `tickets`, `worker_stats`, and `totals` are
// never acquired in conflicting orders — `queue` is always taken alone,
// and `worker_stats`/`totals` only ever nest *inside* `tickets` (in
// accept/finalize). Waiters block on `done` holding `tickets`, which the
// condvar releases.

impl Inner {
    fn submit(&self, client: ClientId, item: WorkItem) -> Result<TicketId, SubmitError> {
        let (plan, total, agg) = match item {
            WorkItem::Sweep(spec) => {
                let jobs = spec.jobs();
                let total = jobs.len();
                let shared = spec.shared_templates();
                let fps = spec.cells.iter().map(cell_fingerprint).collect();
                let agg = TicketAgg::Sweep(Aggregator::new(&spec));
                (
                    Plan::Sweep {
                        spec,
                        shared,
                        fps,
                        jobs,
                    },
                    total,
                    agg,
                )
            }
            WorkItem::Chaos(spec) => {
                let jobs = spec.jobs();
                let total = jobs.len();
                let agg = TicketAgg::Chaos(ChaosAggregator::new(&spec));
                (Plan::Chaos { spec, jobs }, total, agg)
            }
        };
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        {
            let mut tickets = lock(&self.tickets);
            let pending = tickets.pending.entry(client).or_insert(0);
            if *pending >= self.quota {
                return Err(SubmitError::QuotaExceeded {
                    pending: *pending,
                    quota: self.quota,
                });
            }
            *pending += 1;
            tickets.entries.insert(
                id,
                Ticket {
                    client,
                    plan: Arc::new(plan),
                    agg: Some(agg),
                    remaining: total,
                    total,
                    cancelled: false,
                    report: None,
                    started: Instant::now(),
                    plans_before: self.cache.plans().stats(),
                    kernel_sims: 0,
                    peak_events: 0,
                    cells_deduped: 0,
                    // The historical semantic: queue depth is at least
                    // this ticket's own job count.
                    max_queue_depth: total,
                },
            );
        }
        if total == 0 {
            // An empty grid finalizes immediately, matching the one-shot
            // entry points (zero boots, empty report).
            let mut tickets = lock(&self.tickets);
            let table = &mut *tickets;
            if let Some(t) = table.entries.get_mut(&id) {
                self.finalize_ticket(t);
                if let Some(p) = table.pending.get_mut(&client) {
                    *p = p.saturating_sub(1);
                }
            }
            self.done.notify_all();
        } else {
            let mut q = lock(&self.queue);
            if q.shutdown {
                drop(q);
                self.retract(id, client);
                return Err(SubmitError::ShuttingDown);
            }
            let depth = self.queued.load(Ordering::Relaxed);
            if depth.saturating_add(total) > self.queue_capacity {
                drop(q);
                self.retract(id, client);
                return Err(SubmitError::Saturated {
                    queued: depth,
                    capacity: self.queue_capacity,
                    jobs: total,
                });
            }
            let lane = q.lane(client);
            for index in 0..total {
                lane.tasks.push_back(Task { ticket: id, index });
            }
            let depth = self.queued.fetch_add(total, Ordering::Relaxed) + total;
            q.peak = q.peak.max(depth);
            drop(q);
            self.work.notify_all();
        }
        let mut totals = lock(&self.totals);
        totals.tickets_submitted += 1;
        totals.clients.insert(client);
        Ok(id)
    }

    /// Rolls back a ticket registration whose enqueue was refused.
    fn retract(&self, id: TicketId, client: ClientId) {
        let mut tickets = lock(&self.tickets);
        tickets.entries.remove(&id);
        if let Some(p) = tickets.pending.get_mut(&client) {
            *p = p.saturating_sub(1);
        }
    }

    /// Blocks for the next task; `None` means shutdown *and* an empty
    /// queue — shutdown drains accepted work before stopping.
    fn next_task(&self) -> Option<Task> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(task) = q.pop() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                return Some(task);
            }
            if q.shutdown {
                return None;
            }
            q = self.work.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Accepts one worker result into its ticket, finalizing on the
    /// last one.
    fn accept(&self, ticket: TicketId, msg: TicketMsg) {
        let depth = self.queued.load(Ordering::Relaxed);
        let mut tickets = lock(&self.tickets);
        let table = &mut *tickets;
        let Some(t) = table.entries.get_mut(&ticket) else {
            return;
        };
        if t.cancelled {
            // The result raced a cancel: discard it.
            return;
        }
        t.max_queue_depth = t.max_queue_depth.max(depth);
        match (&mut t.agg, msg) {
            (Some(TicketAgg::Sweep(agg)), TicketMsg::Sweep(result)) => {
                if let Ok(out) = &result {
                    t.kernel_sims += out.kernel_sims;
                    t.peak_events = t.peak_events.max(out.peak_events);
                    t.cells_deduped += out.deduped;
                }
                agg.accept(result);
            }
            (Some(TicketAgg::Chaos(agg)), TicketMsg::Chaos(result)) => agg.accept(result),
            _ => unreachable!("a ticket's plan and its results are the same kind"),
        }
        t.remaining -= 1;
        lock(&self.totals).jobs_executed += 1;
        if t.remaining == 0 {
            self.finalize_ticket(t);
            let client = t.client;
            if let Some(p) = table.pending.get_mut(&client) {
                *p = p.saturating_sub(1);
            }
            self.done.notify_all();
        }
    }

    /// Builds the ticket's report (called with the ticket lock held).
    fn finalize_ticket(&self, t: &mut Ticket) {
        let agg = t.agg.take().expect("tickets finalize exactly once");
        let wall = t.started.elapsed();
        let per_worker = lock(&self.worker_stats).clone();
        let report = match agg {
            TicketAgg::Sweep(agg) => {
                let plans = self.cache.plans().stats();
                ServiceReport::Sweep(SweepOutcome {
                    report: agg.finalize(),
                    stats: PoolStats {
                        workers: self.workers,
                        wall,
                        jobs: t.total,
                        max_queue_depth: t.max_queue_depth,
                        restarts: 0,
                        kernel_sims: t.kernel_sims,
                        peak_events: t.peak_events,
                        // Counter deltas around this ticket; exact when
                        // the ticket ran alone, approximate when
                        // concurrent tickets compiled plans meanwhile.
                        plans_compiled: plans
                            .plans_compiled
                            .saturating_sub(t.plans_before.plans_compiled),
                        plan_cache_hits: plans.hits.saturating_sub(t.plans_before.hits),
                        cells_deduped: t.cells_deduped,
                        recoveries: 0,
                        artifacts_rejected: 0,
                        per_worker,
                    },
                })
            }
            TicketAgg::Chaos(agg) => {
                let Plan::Chaos { spec, .. } = &*t.plan else {
                    unreachable!("chaos aggregators belong to chaos plans")
                };
                let (report, chaos_totals) = agg.finalize(spec);
                ServiceReport::Chaos(ChaosOutcome {
                    report,
                    stats: PoolStats {
                        workers: self.workers,
                        wall,
                        jobs: t.total,
                        max_queue_depth: t.max_queue_depth,
                        restarts: chaos_totals.restarts,
                        // Chaos boots run under their own fault plans
                        // and share no cached artifacts.
                        kernel_sims: 0,
                        peak_events: 0,
                        plans_compiled: 0,
                        plan_cache_hits: 0,
                        cells_deduped: 0,
                        recoveries: chaos_totals.recoveries,
                        artifacts_rejected: chaos_totals.artifacts_rejected,
                        per_worker,
                    },
                })
            }
        };
        let mut totals = lock(&self.totals);
        totals.tickets_completed += 1;
        match &report {
            ServiceReport::Sweep(o) => {
                totals.kernel_sims += o.stats.kernel_sims as u64;
                totals.cells_deduped += o.stats.cells_deduped as u64;
            }
            ServiceReport::Chaos(o) => {
                totals.restarts += o.stats.restarts as u64;
                totals.recoveries += o.stats.recoveries as u64;
                totals.artifacts_rejected += o.stats.artifacts_rejected as u64;
            }
        }
        t.report = Some(report);
    }

    fn wait(&self, id: TicketId) -> Result<ServiceReport, WaitError> {
        let mut tickets = lock(&self.tickets);
        loop {
            match tickets.entries.get(&id) {
                None => return Err(WaitError::UnknownTicket),
                Some(t) if t.cancelled => {
                    tickets.entries.remove(&id);
                    return Err(WaitError::Cancelled);
                }
                Some(t) if t.report.is_some() => {
                    let t = tickets.entries.remove(&id).expect("entry just observed");
                    return Ok(t.report.expect("report just observed"));
                }
                Some(_) => {
                    tickets = self.done.wait(tickets).unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }

    fn poll(&self, id: TicketId) -> Option<TicketStatus> {
        let tickets = lock(&self.tickets);
        tickets.entries.get(&id).map(|t| {
            if t.cancelled {
                TicketStatus::Cancelled
            } else if t.report.is_some() {
                TicketStatus::Done
            } else {
                let completed = match &t.agg {
                    Some(TicketAgg::Sweep(a)) => a.accepted(),
                    Some(TicketAgg::Chaos(a)) => a.accepted(),
                    None => t.total,
                };
                if completed == 0 {
                    TicketStatus::Queued { total: t.total }
                } else {
                    TicketStatus::Running {
                        completed,
                        total: t.total,
                    }
                }
            }
        })
    }

    fn cancel(&self, id: TicketId) -> bool {
        // Retract queued jobs first; anything already in flight is
        // discarded at accept time.
        let mut removed = 0usize;
        {
            let mut q = lock(&self.queue);
            for lane in &mut q.lanes {
                lane.tasks.retain(|t| {
                    if t.ticket == id {
                        removed += 1;
                        false
                    } else {
                        true
                    }
                });
            }
        }
        if removed > 0 {
            self.queued.fetch_sub(removed, Ordering::Relaxed);
        }
        let mut tickets = lock(&self.tickets);
        let table = &mut *tickets;
        let Some(t) = table.entries.get_mut(&id) else {
            return false;
        };
        if t.cancelled || t.report.is_some() {
            return false;
        }
        t.cancelled = true;
        // The quota slot frees immediately: a cancelled ticket is no
        // longer "pending" even while in-flight jobs drain.
        if let Some(p) = table.pending.get_mut(&t.client) {
            *p = p.saturating_sub(1);
        }
        drop(tickets);
        lock(&self.totals).tickets_cancelled += 1;
        self.done.notify_all();
        true
    }

    fn stats(&self) -> ServiceStats {
        let totals = lock(&self.totals);
        let snapshot = ServiceStats {
            workers: self.workers,
            clients: totals.clients.len(),
            tickets_submitted: totals.tickets_submitted,
            tickets_completed: totals.tickets_completed,
            tickets_cancelled: totals.tickets_cancelled,
            jobs_executed: totals.jobs_executed,
            queue_depth: self.queued.load(Ordering::Relaxed),
            queue_peak: 0,
            kernel_sims: totals.kernel_sims,
            plans_compiled: 0,
            plan_cache_hits: 0,
            cells_deduped: totals.cells_deduped,
            restarts: totals.restarts,
            recoveries: totals.recoveries,
            artifacts_rejected: totals.artifacts_rejected,
        };
        drop(totals);
        let plans = self.cache.plans().stats();
        ServiceStats {
            queue_peak: lock(&self.queue).peak,
            plans_compiled: plans.plans_compiled,
            plan_cache_hits: plans.hits,
            ..snapshot
        }
    }
}

fn worker_loop(inner: Arc<Inner>, w: usize) {
    let mut builder = bb_sim::MachineBuilder::new();
    while let Some(task) = inner.next_task() {
        let plan = {
            let tickets = lock(&inner.tickets);
            tickets
                .entries
                .get(&task.ticket)
                .filter(|t| !t.cancelled)
                .map(|t| Arc::clone(&t.plan))
        };
        // Cancelled or retracted tickets leave orphan tasks; skip them.
        let Some(plan) = plan else { continue };
        let started = Instant::now();
        let msg = match &*plan {
            Plan::Sweep {
                spec,
                shared,
                fps,
                jobs,
            } => TicketMsg::Sweep(run_job(
                spec,
                shared,
                fps,
                &inner.cache,
                jobs[task.index],
                &mut builder,
            )),
            Plan::Chaos { spec, jobs } => TicketMsg::Chaos(run_chaos_job(spec, jobs[task.index])),
        };
        let elapsed = started.elapsed();
        {
            let mut ws = lock(&inner.worker_stats);
            ws[w].jobs += 1;
            ws[w].busy += elapsed;
        }
        inner.accept(task.ticket, msg);
    }
}

/// The persistent fleet executor (see the module docs).
///
/// Dropping the service initiates shutdown: accepted work drains, then
/// the workers join. Use [`FleetService::shutdown`] for the same thing
/// explicitly.
pub struct FleetService {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl FleetService {
    /// Starts a service with a fresh private [`FleetCache`].
    pub fn start(config: ServiceConfig) -> Self {
        FleetService::with_cache(config, FleetCache::fresh())
    }

    /// Starts a service over an existing cache — shared artifacts
    /// survive service restarts, and multiple services can (read: tests
    /// do) share one cache.
    pub fn with_cache(config: ServiceConfig, cache: Arc<FleetCache>) -> Self {
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            workers,
            queue_capacity: config.queue_capacity,
            quota: config.max_pending_per_client.max(1),
            cache,
            queue: Mutex::new(QueueState {
                lanes: Vec::new(),
                next: 0,
                peak: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            queued: AtomicUsize::new(0),
            tickets: Mutex::new(TicketTable {
                entries: HashMap::new(),
                pending: HashMap::new(),
            }),
            done: Condvar::new(),
            next_ticket: AtomicU64::new(1),
            worker_stats: Mutex::new(vec![WorkerStats::default(); workers]),
            totals: Mutex::new(Totals::default()),
        });
        let handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bb-fleet-{w}"))
                    .spawn(move || worker_loop(inner, w))
                    .expect("spawn fleet worker")
            })
            .collect();
        FleetService { inner, handles }
    }

    /// The service's shared artifact cache.
    pub fn cache(&self) -> &Arc<FleetCache> {
        &self.inner.cache
    }

    /// Enqueues a work item for `client` and returns its ticket.
    /// Applies the queue-capacity and per-client-quota admission policy
    /// (see [`ServiceConfig`]); an empty grid finalizes immediately.
    pub fn submit(&self, client: ClientId, item: WorkItem) -> Result<TicketId, SubmitError> {
        self.inner.submit(client, item)
    }

    /// Non-blocking progress for a ticket; `None` once the report was
    /// collected (or the id was never issued).
    pub fn poll(&self, ticket: TicketId) -> Option<TicketStatus> {
        self.inner.poll(ticket)
    }

    /// Blocks until the ticket finalizes and returns its report. Each
    /// report can be collected once; a second wait on the same id
    /// returns [`WaitError::UnknownTicket`].
    pub fn wait(&self, ticket: TicketId) -> Result<ServiceReport, WaitError> {
        self.inner.wait(ticket)
    }

    /// Cancels a ticket: queued jobs are dropped, in-flight results
    /// discarded, the client's quota slot freed. Returns `false` if the
    /// ticket already finalized (its report stays collectable) or is
    /// unknown.
    pub fn cancel(&self, ticket: TicketId) -> bool {
        self.inner.cancel(ticket)
    }

    /// Snapshots service-wide observability counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Stops admission, drains accepted work, and joins the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CellSpec;
    use bb_workloads::{profiles, TizenParams};

    fn tiny_spec(seeds: impl IntoIterator<Item = u64>) -> SweepSpec {
        SweepSpec::new().cell(
            CellSpec::tizen(
                "tiny",
                profiles::ue48h6200(),
                TizenParams {
                    services: 24,
                    ..TizenParams::open_source()
                },
            )
            .seeds(seeds)
            .conventional_vs_bb(),
        )
    }

    #[test]
    fn tickets_resolve_and_reports_match_the_one_shot_path() {
        let service = FleetService::start(ServiceConfig::with_workers(2));
        let ticket = service
            .submit(1, WorkItem::Sweep(tiny_spec([1, 2])))
            .expect("admitted");
        let ServiceReport::Sweep(outcome) = service.wait(ticket).expect("report") else {
            panic!("sweep ticket must yield a sweep report");
        };
        let one_shot = crate::pool::run_sweep(
            &tiny_spec([1, 2]),
            &crate::pool::PoolConfig::with_workers(1),
            &FleetCache::fresh(),
        );
        assert_eq!(outcome.report.to_json(), one_shot.report.to_json());
        // The report was collected: the ticket id is dead.
        assert!(matches!(
            service.wait(ticket),
            Err(WaitError::UnknownTicket)
        ));
        assert_eq!(service.poll(ticket), None);
        let stats = service.stats();
        assert_eq!(stats.tickets_submitted, 1);
        assert_eq!(stats.tickets_completed, 1);
        assert_eq!(stats.jobs_executed, 2);
        assert_eq!(stats.clients, 1);
    }

    #[test]
    fn empty_grids_finalize_immediately() {
        let service = FleetService::start(ServiceConfig::with_workers(1));
        let ticket = service
            .submit(7, WorkItem::Sweep(SweepSpec::new()))
            .expect("admitted");
        assert_eq!(service.poll(ticket), Some(TicketStatus::Done));
        let ServiceReport::Sweep(outcome) = service.wait(ticket).expect("report") else {
            panic!("sweep ticket must yield a sweep report");
        };
        assert_eq!(outcome.report.total_boots, 0);
        assert_eq!(outcome.stats.jobs, 0);
    }

    #[test]
    fn quota_bounds_pending_tickets_per_client() {
        let config = ServiceConfig {
            workers: 1,
            max_pending_per_client: 1,
            ..ServiceConfig::default()
        };
        let service = FleetService::start(config);
        // A big-enough grid keeps the first ticket unfinished while the
        // second submission is judged.
        let first = service
            .submit(1, WorkItem::Sweep(tiny_spec(0..6)))
            .expect("first ticket admitted");
        let second = service.submit(1, WorkItem::Sweep(tiny_spec([99])));
        assert_eq!(
            second,
            Err(SubmitError::QuotaExceeded {
                pending: 1,
                quota: 1
            })
        );
        // Another client is unaffected by the first one's quota.
        let other = service
            .submit(2, WorkItem::Sweep(tiny_spec([50])))
            .expect("other client admitted");
        assert!(service.wait(first).is_ok());
        assert!(service.wait(other).is_ok());
        // The drained quota slot admits the client again.
        let third = service
            .submit(1, WorkItem::Sweep(tiny_spec([99])))
            .expect("quota slot freed");
        assert!(service.wait(third).is_ok());
    }

    #[test]
    fn saturated_queues_push_back() {
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            ..ServiceConfig::default()
        };
        let service = FleetService::start(config);
        let first = service
            .submit(1, WorkItem::Sweep(tiny_spec(0..4)))
            .expect("fits the queue");
        // 8 more jobs cannot fit a 4-capacity queue no matter what
        // drained meanwhile.
        let big = service.submit(2, WorkItem::Sweep(tiny_spec(0..8)));
        assert!(
            matches!(
                big,
                Err(SubmitError::Saturated {
                    capacity: 4,
                    jobs: 8,
                    ..
                })
            ),
            "got {big:?}"
        );
        assert!(service.wait(first).is_ok());
        // Once drained, capacity-sized work is admitted again.
        let retry = service
            .submit(2, WorkItem::Sweep(tiny_spec(0..4)))
            .expect("drained queue admits again");
        assert!(service.wait(retry).is_ok());
    }

    #[test]
    fn cancelled_tickets_never_report() {
        let service = FleetService::start(ServiceConfig::with_workers(1));
        let ticket = service
            .submit(1, WorkItem::Sweep(tiny_spec(0..8)))
            .expect("admitted");
        assert!(service.cancel(ticket), "first cancel wins");
        assert!(!service.cancel(ticket), "second cancel is a no-op");
        assert!(matches!(service.wait(ticket), Err(WaitError::Cancelled)));
        assert_eq!(service.stats().tickets_cancelled, 1);
        // The service still executes later work.
        let next = service
            .submit(1, WorkItem::Sweep(tiny_spec([3])))
            .expect("admitted after cancel");
        assert!(service.wait(next).is_ok());
    }

    #[test]
    fn cross_client_grids_share_the_dedup_cache() {
        let service = FleetService::start(ServiceConfig::with_workers(1));
        let a = service
            .submit(1, WorkItem::Sweep(tiny_spec([5, 6])))
            .expect("admitted");
        let ra = service.wait(a).expect("report");
        // Client 2 submits the identical grid afterwards: every boot is
        // a cross-client dedup hit.
        let b = service
            .submit(2, WorkItem::Sweep(tiny_spec([5, 6])))
            .expect("admitted");
        let rb = service.wait(b).expect("report");
        let (ServiceReport::Sweep(ra), ServiceReport::Sweep(rb)) = (ra, rb) else {
            panic!("sweep tickets must yield sweep reports");
        };
        assert_eq!(ra.report.to_json(), rb.report.to_json());
        assert_eq!(ra.stats.cells_deduped, 0);
        assert_eq!(rb.stats.cells_deduped, 4, "2 jobs x 2 configs, all hits");
        assert_eq!(rb.stats.kernel_sims, 0, "nothing re-simulates");
        assert_eq!(service.stats().cells_deduped, 4);
    }

    #[test]
    fn shutdown_drains_accepted_work() {
        let service = FleetService::start(ServiceConfig::with_workers(2));
        let tickets: Vec<_> = (0..3)
            .map(|i| {
                service
                    .submit(i, WorkItem::Sweep(tiny_spec([i])))
                    .expect("admitted")
            })
            .collect();
        // Collect every report, then drop the service: both orders of
        // (drain, shutdown) must leave nothing stuck.
        for t in tickets {
            assert!(service.wait(t).is_ok());
        }
        service.shutdown();
    }

    #[test]
    fn stats_render_the_serve_stats_schema() {
        let service = FleetService::start(ServiceConfig::with_workers(1));
        let t = service
            .submit(1, WorkItem::Sweep(tiny_spec([1])))
            .expect("admitted");
        service.wait(t).expect("report");
        let doc = service.stats().to_json();
        let parsed = crate::json::parse(&doc).expect("stats JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(crate::json::Json::as_str),
            Some(crate::json::SCHEMA_SERVE_STATS)
        );
        assert_eq!(
            parsed
                .get("jobs_executed")
                .and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            parsed
                .get("tickets")
                .and_then(|t| t.get("completed"))
                .and_then(crate::json::Json::as_f64),
            Some(1.0)
        );
    }
}
