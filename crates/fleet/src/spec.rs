//! Sweep specification: a cartesian grid of boot simulations.
//!
//! A [`SweepSpec`] is a list of *cells*. Each cell names a scenario
//! source (a synthetic Tizen workload or a fixed [`Scenario`]), the
//! seeds to instantiate it with, and the [`BbConfig`]s to boot each
//! instance under. One *job* is one `(cell, seed)` slot: the worker
//! builds the scenario once, measures its [`PreParser`] once, and boots
//! every config against that shared template — the expensive
//! regeneration work is amortized across the whole config axis instead
//! of being paid per boot.

use std::sync::Arc;
use std::time::Duration;

use bb_core::booster::Scenario;
use bb_core::{BbConfig, PreParser};
use bb_workloads::{tv_scenario_with, MachineProfile, TizenParams};

/// Where a cell's boot scenarios come from.
#[derive(Debug, Clone)]
pub enum ScenarioSource {
    /// Generate the synthetic Tizen TV workload per seed: each job
    /// regenerates units, workloads, and false-ordering edges with its
    /// own seed (the sweep's variance axis).
    Tizen {
        /// Hardware profile to run on.
        profile: MachineProfile,
        /// Workload parameters; the `seed` field is overridden per job.
        params: TizenParams,
    },
    /// One fixed scenario shared by every seed slot (the seed then only
    /// addresses the result slot). Useful for scenario types the
    /// generator cannot express, and for fault-injection tests.
    Fixed(Arc<Scenario>),
}

/// One cell of the sweep grid.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Cell label; appears in reports and JSON.
    pub label: String,
    /// Scenario source.
    pub source: ScenarioSource,
    /// Seeds to instantiate the source with; one job per seed.
    pub seeds: Vec<u64>,
    /// `(label, config)` pairs each instance boots under. A config
    /// labeled `"conventional"` becomes the cell's savings baseline.
    pub configs: Vec<(String, BbConfig)>,
}

impl CellSpec {
    /// A cell generating Tizen TV workloads on `profile`. Starts with
    /// `params.seed` as the only seed; override with [`CellSpec::seeds`].
    pub fn tizen(label: impl Into<String>, profile: MachineProfile, params: TizenParams) -> Self {
        let seed = params.seed;
        CellSpec {
            label: label.into(),
            source: ScenarioSource::Tizen { profile, params },
            seeds: vec![seed],
            configs: Vec::new(),
        }
    }

    /// A cell booting one fixed scenario. Starts with a single seed 0
    /// (one job); add more to boot the identical scenario repeatedly.
    pub fn fixed(label: impl Into<String>, scenario: Scenario) -> Self {
        CellSpec {
            label: label.into(),
            source: ScenarioSource::Fixed(Arc::new(scenario)),
            seeds: vec![0],
            configs: Vec::new(),
        }
    }

    /// Replaces the seed list.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Adds one config to boot under.
    pub fn config(mut self, label: impl Into<String>, cfg: BbConfig) -> Self {
        self.configs.push((label.into(), cfg));
        self
    }

    /// Adds one config selected by pipeline pass names (see
    /// [`bb_core::STANDARD_PASSES`]): the boot enables exactly those
    /// passes. Ablation cells are pass-set selections — `&[]` is the
    /// conventional boot, the full list is the full Booting Booster.
    ///
    /// # Panics
    ///
    /// Panics on a pass name the standard pipeline does not know.
    pub fn pass_selection(self, label: impl Into<String>, passes: &[&str]) -> Self {
        let cfg = bb_core::Pipeline::standard()
            .config_for(passes)
            .unwrap_or_else(|| panic!("unknown pass in selection {passes:?}"));
        self.config(label, cfg)
    }

    /// Adds the standard pair of pass selections: `"conventional"` (no
    /// passes) and `"bb"` (every pass).
    pub fn conventional_vs_bb(self) -> Self {
        self.pass_selection("conventional", &[])
            .pass_selection("bb", &bb_core::STANDARD_PASSES)
    }

    /// Boots this cell contributes to the sweep.
    pub fn boots(&self) -> usize {
        self.seeds.len() * self.configs.len()
    }
}

/// The full sweep: cells plus execution policy that belongs to the
/// *work* (not the pool), i.e. the per-job deadline.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The grid.
    pub cells: Vec<CellSpec>,
    /// Per-job wall-clock deadline. A job whose boots take longer is
    /// reported as failed and excluded from aggregation. `None` = no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Collect per-boot telemetry spans ([`bb_core::boot_spans`]) and
    /// aggregate them into a [`crate::MetricsReport`] (`bb-metrics-v1`).
    pub metrics: bool,
    /// Fork each job's boots from a shared kernel checkpoint: the boot
    /// prefix (through the kernel→init handoff) is simulated once per
    /// distinct [`BbConfig::prefix_key`] and every config resumes from
    /// the saved [`bb_core::Checkpoint`] instead of re-simulating it.
    /// Reports are byte-identical to an unforked sweep — resuming a
    /// checkpoint replays the exact prefix timeline — the sweep just
    /// does less work (see `PoolStats::kernel_sims`).
    pub fork: bool,
    /// Deduplicate identical grid points: two boots with the same
    /// (scenario identity × seed × config) — across cells, across
    /// seed slots of a [`ScenarioSource::Fixed`] cell — are simulated
    /// once and the result is fanned out to every requesting slot.
    /// Simulation is deterministic, so reports stay byte-identical
    /// with dedup on or off (see `PoolStats::cells_deduped`); on by
    /// default, opt out with [`SweepSpec::with_dedup`] to force every
    /// slot to re-simulate.
    pub dedup: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            cells: Vec::new(),
            deadline: None,
            metrics: false,
            fork: false,
            dedup: true,
        }
    }
}

impl SweepSpec {
    /// An empty sweep.
    pub fn new() -> Self {
        SweepSpec::default()
    }

    /// Adds a cell.
    pub fn cell(mut self, cell: CellSpec) -> Self {
        self.cells.push(cell);
        self
    }

    /// Sets the per-job deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables span metrics collection (see [`SweepSpec::metrics`]).
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enables checkpoint-forked boots (see [`SweepSpec::fork`]).
    pub fn with_fork(mut self, fork: bool) -> Self {
        self.fork = fork;
        self
    }

    /// Enables or disables grid-point dedup (see [`SweepSpec::dedup`];
    /// on by default).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Total boots across the grid.
    pub fn total_boots(&self) -> usize {
        self.cells.iter().map(CellSpec::boots).sum()
    }

    /// Expands the grid into jobs, in deterministic (cell, seed) order.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (cell, c) in self.cells.iter().enumerate() {
            for seed_idx in 0..c.seeds.len() {
                jobs.push(Job { cell, seed_idx });
            }
        }
        jobs
    }

    /// Builds the per-cell shared templates: for `Fixed` cells the
    /// scenario and its [`PreParser`] are measured once here and shared
    /// by every job; `Tizen` cells are seed-dependent and must build
    /// per job.
    pub(crate) fn shared_templates(&self) -> Vec<Option<(Arc<Scenario>, PreParser)>> {
        self.cells
            .iter()
            .map(|c| match &c.source {
                ScenarioSource::Fixed(s) => Some((Arc::clone(s), PreParser::build(&s.units))),
                ScenarioSource::Tizen { .. } => None,
            })
            .collect()
    }
}

/// One unit of pool work: all configs of one `(cell, seed)` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Index into [`SweepSpec::cells`].
    pub cell: usize,
    /// Index into that cell's seed list.
    pub seed_idx: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content fingerprint of a cell's scenario *source*: `(hash,
/// seed_dependent)`. Two cells with equal fingerprints instantiate
/// identical scenarios for equal seeds — the sharing key behind the
/// sweep-wide scenario memo, the cross-job checkpoint memo, and grid
/// dedup (see [`SweepSpec::dedup`]).
///
/// `Tizen` sources hash the profile and the parameters with the seed
/// field canonicalized to zero (the per-job seed is mixed in by
/// [`job_fingerprint`], because the generator derives durations, I/O
/// sizes, *and* false-ordering edges from it). `Fixed` sources hash the
/// scenario content itself and are seed-independent: every seed slot
/// boots the very same template.
pub(crate) fn cell_fingerprint(cell: &CellSpec) -> (u64, bool) {
    match &cell.source {
        ScenarioSource::Tizen { profile, params } => {
            let canonical = TizenParams { seed: 0, ..*params };
            let h = fnv1a(FNV_OFFSET, format!("{profile:?}|{canonical:?}").as_bytes());
            (h, true)
        }
        ScenarioSource::Fixed(s) => (fnv1a(FNV_OFFSET, format!("{s:?}").as_bytes()), false),
    }
}

/// Mixes a job's seed into its cell's source fingerprint (identity for
/// seed-independent sources).
pub(crate) fn job_fingerprint(base: u64, seed_dependent: bool, seed: u64) -> u64 {
    if seed_dependent {
        fnv1a(base, &seed.to_le_bytes())
    } else {
        base
    }
}

/// Materializes the scenario a job boots: the shared template for
/// `Fixed` cells, a freshly generated instance for `Tizen` cells.
pub(crate) fn job_scenario(
    cell: &CellSpec,
    seed: u64,
    shared: &Option<(Arc<Scenario>, PreParser)>,
) -> (Arc<Scenario>, PreParser) {
    match (&cell.source, shared) {
        (ScenarioSource::Fixed(_), Some(tpl)) => tpl.clone(),
        (ScenarioSource::Tizen { profile, params }, _) => {
            let scenario = tv_scenario_with(*profile, TizenParams { seed, ..*params });
            let pre = PreParser::build(&scenario.units);
            (Arc::new(scenario), pre)
        }
        (ScenarioSource::Fixed(s), None) => (Arc::clone(s), PreParser::build(&s.units)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_workloads::profiles;

    fn small_cell() -> CellSpec {
        CellSpec::tizen(
            "small",
            profiles::ue48h6200(),
            TizenParams {
                services: 24,
                ..TizenParams::open_source()
            },
        )
    }

    #[test]
    fn jobs_expand_in_cell_then_seed_order() {
        let spec = SweepSpec::new()
            .cell(small_cell().seeds([1, 2, 3]).conventional_vs_bb())
            .cell(small_cell().seeds([7]).config("bb", BbConfig::full()));
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 4);
        assert_eq!(
            jobs[0],
            Job {
                cell: 0,
                seed_idx: 0
            }
        );
        assert_eq!(
            jobs[2],
            Job {
                cell: 0,
                seed_idx: 2
            }
        );
        assert_eq!(
            jobs[3],
            Job {
                cell: 1,
                seed_idx: 0
            }
        );
        assert_eq!(spec.total_boots(), 3 * 2 + 1);
    }

    #[test]
    fn tizen_jobs_regenerate_per_seed() {
        let cell = small_cell().seeds([10, 11]).conventional_vs_bb();
        let (a, _) = job_scenario(&cell, 10, &None);
        let (b, _) = job_scenario(&cell, 11, &None);
        // Different seeds draw different service durations.
        assert_ne!(
            format!("{:?}", a.workloads),
            format!("{:?}", b.workloads),
            "seeds should vary the generated workload"
        );
    }

    #[test]
    fn fingerprints_key_source_content_not_labels() {
        // Same source, different labels: identical fingerprints — the
        // sharing key must not split on presentation.
        let (fa, dep_a) = cell_fingerprint(&small_cell());
        let (fb, dep_b) =
            cell_fingerprint(&small_cell().seeds([9, 10]).config("bb", BbConfig::full()));
        assert_eq!((fa, dep_a), (fb, dep_b));
        assert!(dep_a, "Tizen sources are seed-dependent");

        // The params seed field is canonicalized away: only the job
        // seed (mixed by job_fingerprint) distinguishes instances.
        let mut reseeded = small_cell();
        if let ScenarioSource::Tizen { params, .. } = &mut reseeded.source {
            params.seed = 999;
        }
        assert_eq!(cell_fingerprint(&reseeded).0, fa);

        // Different generator parameters split.
        let other = CellSpec::tizen(
            "other",
            profiles::ue48h6200(),
            TizenParams {
                services: 25,
                ..TizenParams::open_source()
            },
        );
        assert_ne!(cell_fingerprint(&other).0, fa);

        // Seeds split seed-dependent sources, never fixed ones.
        assert_ne!(job_fingerprint(fa, true, 1), job_fingerprint(fa, true, 2));
        assert_eq!(job_fingerprint(fa, false, 1), job_fingerprint(fa, false, 2));

        // Fixed sources fingerprint their content, seed-independent.
        let scenario = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams {
                services: 24,
                ..TizenParams::open_source()
            },
        );
        let fixed_a = CellSpec::fixed("a", scenario.clone());
        let fixed_b = CellSpec::fixed("b", scenario);
        let (ga, gdep) = cell_fingerprint(&fixed_a);
        assert_eq!(ga, cell_fingerprint(&fixed_b).0);
        assert!(!gdep);
    }

    #[test]
    fn fixed_cells_share_one_template() {
        let scenario = tv_scenario_with(
            profiles::ue48h6200(),
            TizenParams {
                services: 24,
                ..TizenParams::open_source()
            },
        );
        let spec = SweepSpec::new().cell(
            CellSpec::fixed("pinned", scenario)
                .seeds([0, 1, 2])
                .config("bb", BbConfig::full()),
        );
        let shared = spec.shared_templates();
        let (a, pre_a) = job_scenario(&spec.cells[0], 0, &shared[0]);
        let (b, pre_b) = job_scenario(&spec.cells[0], 1, &shared[0]);
        assert!(
            Arc::ptr_eq(&a, &b),
            "fixed cells must not clone the scenario"
        );
        assert_eq!(pre_a, pre_b);
    }
}
