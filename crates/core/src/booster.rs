//! The Booting Booster facade: run a full boot scenario under any
//! [`BbConfig`] and get back the timeline every experiment reads.
//!
//! A [`Scenario`] bundles the hardware profile, the kernel plan, the
//! unit set, the service workload bodies, and the boot-completion
//! definition. The single entry point is the [`BootRequest`] builder:
//! the scenario is lowered to a [`crate::pipeline::BootPlanIr`], the
//! enabled [`PlanPass`]es transform it (recording a [`PassDelta`]
//! each), and [`crate::pipeline::execute_instrumented`] runs the boot
//! end to end. Callers that boot in a loop attach a
//! [`MachineBuilder`] via [`BootRequest::machine_builder`] so each boot
//! reuses the previous machine's allocations.
//!
//! [`PlanPass`]: crate::pipeline::PlanPass
//! [`PassDelta`]: crate::pipeline::PassDelta

use bb_init::{
    BootRecord, ManagerCosts, PlanOverrides, Transaction, Unit, UnitGraph, UnitName, WorkloadMap,
};
use bb_kernel::{KernelPlan, KernelReport, ModuleCatalog};
use bb_sim::{
    snapshot, DeviceId, DeviceProfile, FaultPlan, Machine, MachineBuilder, MachineConfig, RcuStats,
    SimTime,
};

use std::sync::Arc;

use crate::config::BbConfig;
use crate::error::Error;
use crate::pipeline::{
    execute_pooled, execute_pooled_owned, execute_prefix_pooled, execute_suffix,
    execute_suffix_view, BootPlanIr, OwnedPlan, PassDelta, Pipeline, PrefixView, SuffixView,
};
use crate::plan_cache::PlanCache;
use crate::service_engine::{ParseCostParams, PreParser};

/// A complete boot scenario (hardware + software + completion policy).
///
/// By convention the boot storage device is the machine's device 0;
/// workload bodies that read storage use `DeviceId::from_raw(0)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, for reports.
    pub name: String,
    /// Machine shape (cores, speed, quantum, RCU parameters).
    pub machine: MachineConfig,
    /// Boot storage profile.
    pub storage: DeviceProfile,
    /// Kernel plan (defer flags are overwritten per config).
    pub kernel: KernelPlan,
    /// Loadable kernel components.
    pub modules: ModuleCatalog,
    /// The unit set.
    pub units: Vec<Unit>,
    /// Service workload bodies keyed by `ExecStart=`.
    pub workloads: WorkloadMap,
    /// Boot target to expand.
    pub target: String,
    /// Units whose readiness defines boot completion.
    pub completion: Vec<UnitName>,
    /// Manager cost knobs.
    pub manager_costs: ManagerCosts,
    /// Unit-configuration parse cost parameters.
    pub parse_params: ParseCostParams,
    /// Additional init-phase tasks prepended to the Boot-up Engine's
    /// table (experiment hooks, e.g. pre-fork zygote setup).
    pub extra_init_tasks: Vec<bb_init::ManagerTask>,
}

/// Everything measured from one boosted (or conventional) boot.
#[derive(Debug)]
pub struct FullBootReport {
    /// The configuration that ran.
    pub config: BbConfig,
    /// Kernel phase timings.
    pub kernel: KernelReport,
    /// Init/service phase record.
    pub boot: BootRecord,
    /// RCU engine statistics.
    pub rcu: RcuStats,
    /// Identified BB Group (empty when `bb_group` is off).
    pub bb_group: Vec<UnitName>,
    /// Time the machine went fully quiescent (deferred work included).
    pub quiesce_time: SimTime,
    /// Per-pass provenance: what each enabled [`crate::pipeline::PlanPass`]
    /// changed in the plan (empty for a conventional boot).
    pub deltas: Vec<PassDelta>,
}

impl FullBootReport {
    /// Boot time from power-on to the completion definition.
    ///
    /// # Panics
    ///
    /// Panics if the boot never completed.
    pub fn boot_time(&self) -> SimTime {
        self.boot.boot_time()
    }

    /// Boot time, or `None` if the completion definition was never met
    /// (a hung boot). The non-panicking form for sweep workers.
    pub fn try_boot_time(&self) -> Option<SimTime> {
        self.boot.try_boot_time()
    }
}

/// One boot of a [`Scenario`], as returned by [`BootRequest::run`]: the
/// measured report plus the machine whose trace produced it (for
/// bootcharts, chrome traces, and pass spans).
#[derive(Debug)]
pub struct Boot {
    /// Everything measured from the boot.
    pub report: FullBootReport,
    /// The simulated machine, run to quiescence.
    pub machine: Machine,
    /// Artifact recoveries this boot incurred (empty unless an artifact
    /// was supplied and needed the [`crate::recovery`] chain).
    pub recoveries: Vec<crate::recovery::RecoveryEvent>,
}

/// Where in the boot timeline a [`Checkpoint`] is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPhase {
    /// The kernel→init handoff: bootloader, kernel image load, memory
    /// and rootfs setup, initcalls, RCU Booster Control installation,
    /// and module-loading setup have all been simulated; the init
    /// scheme has not started. This is the natural split point because
    /// every configuration with the same [`BbConfig::prefix_key`]
    /// reaches it with a bit-identical machine.
    KernelHandoff,
}

/// A saved boot prefix: the machine state at a [`CheckpointPhase`],
/// serialized with [`bb_sim::snapshot`], plus the few prefix products
/// the suffix needs (the kernel report and the boot-storage device).
///
/// Produced by [`BootRequest::checkpoint_at`]; consumed — any number of
/// times — by [`BootRequest::resume`]. A checkpoint is `Clone`, cheap
/// to fork, and safe to hand to other threads, which is what lets a
/// fleet sweep simulate the shared kernel phase once per prefix key
/// instead of once per configuration.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    phase: CheckpointPhase,
    bytes: Vec<u8>,
    kernel: KernelReport,
    device: DeviceId,
    cfg: BbConfig,
    config_hash: u64,
    /// The checkpoint request's full boot plan, kept so a resume under
    /// the same configuration skips re-planning (see
    /// [`BootRequest::resume`]). Behind an `Arc` so a checkpoint taken
    /// through a [`PlanCache`] *shares* the cached plan instead of
    /// cloning the graph and task tables, and so cloning a checkpoint
    /// to fan it out across workers stays cheap.
    plan: Arc<OwnedPlan>,
}

impl Checkpoint {
    /// Where in the boot this checkpoint was taken.
    pub fn phase(&self) -> CheckpointPhase {
        self.phase
    }

    /// The configuration the prefix was simulated under. A resume may
    /// use any configuration with the same [`BbConfig::prefix_key`].
    pub fn config(&self) -> BbConfig {
        self.cfg
    }

    /// The serialized machine snapshot (see [`bb_sim::snapshot`] for
    /// the format). Stable for identical scenarios and prefix keys.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// FNV-1a hash of the machine configuration the snapshot encodes;
    /// [`BootRequest::resume`] rejects scenarios that hash differently.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// Kernel phase timings measured while producing the prefix.
    pub fn kernel(&self) -> &KernelReport {
        &self.kernel
    }

    /// This checkpoint with its snapshot image replaced by `bytes` —
    /// the image as it came back from storage, which may differ from
    /// what was written. [`BootRequest::resume`] validates the image
    /// (header pins plus the v2 payload checksum) and surfaces damage
    /// as [`Error::Snapshot`]; [`crate::recovery::resume_or_cold_boot`]
    /// turns that into a recovered cold boot.
    pub fn with_image(&self, bytes: Vec<u8>) -> Checkpoint {
        Checkpoint {
            bytes,
            ..self.clone()
        }
    }
}

/// The single entry point for booting a scenario: a builder over every
/// knob the old `boost_*` family spread across four functions.
///
/// Defaults: the full BB configuration, no pre-built parser
/// measurements, no faults, telemetry off, no plan tweak.
///
/// # Examples
///
/// ```no_run
/// use bb_core::{BbConfig, BootRequest};
/// # fn scenario() -> bb_core::Scenario { unimplemented!() }
/// let s = scenario();
/// let boot = BootRequest::new(&s)
///     .config(BbConfig::full())
///     .telemetry(true)
///     .run()?;
/// println!("boot time: {}", boot.report.boot_time());
/// # Ok::<(), bb_core::Error>(())
/// ```
pub struct BootRequest<'s> {
    scenario: &'s Scenario,
    cfg: BbConfig,
    pre: Option<&'s PreParser>,
    faults: Option<&'s FaultPlan>,
    artifact: Option<&'s crate::recovery::ArtifactRead>,
    telemetry: bool,
    builder: Option<&'s mut MachineBuilder>,
    cache: Option<(&'s PlanCache, &'s Arc<Scenario>)>,
    #[allow(clippy::type_complexity)]
    tweak: Option<Box<dyn FnOnce(&UnitGraph, &Transaction, &mut PlanOverrides) + 's>>,
}

impl<'s> BootRequest<'s> {
    /// Starts a request for one boot of `scenario` (full BB config).
    pub fn new(scenario: &'s Scenario) -> Self {
        BootRequest {
            scenario,
            cfg: BbConfig::full(),
            pre: None,
            faults: None,
            artifact: None,
            telemetry: false,
            builder: None,
            cache: None,
            tweak: None,
        }
    }

    /// Boots under `cfg` instead of the default full BB configuration.
    pub fn config(mut self, cfg: BbConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Reuses pre-built [`PreParser`] measurements — the sweep-friendly
    /// path: a fleet runs thousands of boots of the same scenario, and
    /// building the Pre-parser blob (rendering every unit file and
    /// encoding the binary cache) once instead of per boot removes the
    /// dominant per-boot setup cost.
    ///
    /// `pre` must describe the scenario's units; it is the caller's job
    /// to keep them in sync (use [`PreParser::build`] on the same set).
    pub fn prepared(mut self, pre: &'s PreParser) -> Self {
        self.pre = Some(pre);
        self
    }

    /// Installs a fault plan before the kernel boots, so device faults
    /// afflict kernel-phase reads too. The empty plan is a strict
    /// no-op.
    pub fn faults(mut self, faults: &'s FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Supplies the Pre-parser cache as it was read back from boot
    /// storage. Before planning, [`run`](Self::run) validates the
    /// artifact through the [`crate::recovery`] chain — bounded
    /// transient-read retries, container CRC, format version, and the
    /// content hash against this scenario's unit set. A rejected
    /// artifact turns the Pre-parser off for this boot (the timeline of
    /// a device whose cache was discarded: bit-identical to a boot that
    /// never had it) and records a priced
    /// [`crate::recovery::RecoveryEvent`] on the [`Boot`].
    ///
    /// Ignored when the configuration does not use the Pre-parser — a
    /// conventional boot never reads the cache.
    pub fn preparse_artifact(mut self, read: &'s crate::recovery::ArtifactRead) -> Self {
        self.artifact = Some(read);
        self
    }

    /// Draws the boot's machine from `builder`'s recycling pool instead
    /// of allocating a fresh one — the fleet hot path. Hand the
    /// finished [`Boot::machine`] back via [`MachineBuilder::recycle`]
    /// so the next request reuses its allocations. The builder contract
    /// ([`MachineBuilder::build`]) makes this invisible in results:
    /// timelines, traces, and snapshots stay bit-identical.
    pub fn machine_builder(mut self, builder: &'s mut MachineBuilder) -> Self {
        self.builder = Some(builder);
        self
    }

    /// Shares compiled plans through `cache`: [`run`](Self::run),
    /// [`checkpoint_at`](Self::checkpoint_at), and
    /// [`resume`](Self::resume) first consult the cache for a plan
    /// compiled for (`scenario`, this request's config) and reuse it
    /// with zero clones; on a miss they compile once and insert. The
    /// sweep-wide amortization this enables is why fleet workers hand
    /// every request the same cache (see `bb-fleet`).
    ///
    /// `scenario` is the cache key and **must be the very allocation
    /// this request was built from** (the `Arc` whose contents
    /// [`BootRequest::new`] borrowed) — the cache keys by pointer
    /// identity, so handing it a different `Arc` would file the plan
    /// under the wrong scenario.
    ///
    /// Requests with a [`tweak`](Self::tweak) bypass the cache: tweaks
    /// mutate the plan per boot, so their plans are never shared.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` is not the request's scenario.
    pub fn plan_cache(mut self, cache: &'s PlanCache, scenario: &'s Arc<Scenario>) -> Self {
        assert!(
            std::ptr::eq::<Scenario>(Arc::as_ptr(scenario), self.scenario),
            "plan_cache scenario must be the Arc the request's scenario reference points into"
        );
        self.cache = Some((cache, scenario));
        self
    }

    /// Arms the machine's metrics sink (RCU waits, run-queue depth, I/O
    /// latency histograms; see [`bb_sim::telemetry`]). Off by default —
    /// and guaranteed not to perturb the timeline when on.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Adjusts the plan overrides after the passes ran — e.g. the
    /// paper's §4.2 experiment that manually adds *only* `var.mount` to
    /// the BB Group without enabling the full isolator.
    pub fn tweak(
        mut self,
        tweak: impl FnOnce(&UnitGraph, &Transaction, &mut PlanOverrides) + 's,
    ) -> Self {
        self.tweak = Some(Box::new(tweak));
        self
    }

    /// Plans the boot, executes only its *prefix* (through the
    /// kernel→init handoff), and captures the machine as a
    /// [`Checkpoint`] that [`resume`](Self::resume) can continue from —
    /// as many times, and under as many suffix configurations, as the
    /// caller likes.
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] if telemetry is enabled (the metrics sink
    /// is deliberately not snapshotted; see [`bb_sim::snapshot`]) or a
    /// plan tweak was installed (tweaks act on the suffix plan — apply
    /// them on the resume request instead). Planning errors surface as
    /// usual; snapshot encoding failures as [`Error::Snapshot`].
    pub fn checkpoint_at(self, phase: CheckpointPhase) -> Result<Checkpoint, Error> {
        let CheckpointPhase::KernelHandoff = phase;
        if self.telemetry {
            return Err(Error::Checkpoint(
                "telemetry must be off to checkpoint: the metrics sink is not snapshotted".into(),
            ));
        }
        if self.tweak.is_some() {
            return Err(Error::Checkpoint(
                "plan tweaks act on the boot suffix; install the tweak on the resume request"
                    .into(),
            ));
        }
        if self.artifact.is_some() {
            return Err(Error::Checkpoint(
                "artifacts are validated by run(); a checkpoint simulates only the kernel \
                 prefix, which never reads the Pre-parser cache"
                    .into(),
            ));
        }
        // Resolve the full plan: a cache hit shares the compiled
        // `Arc<OwnedPlan>` outright; a miss (or no cache) compiles it
        // once — and a cache-attached request publishes the result so
        // the *next* checkpoint or run of this (scenario, config)
        // skips planning.
        let plan: Arc<OwnedPlan> = match self.cache {
            Some((cache, key)) => match cache.lookup(key, &self.cfg) {
                Some(plan) => plan,
                None => {
                    let (ir, deltas) =
                        Pipeline::standard().plan(self.scenario, &self.cfg, self.pre)?;
                    let plan = Arc::new(OwnedPlan::capture(self.scenario, &ir, &deltas));
                    cache.insert(key, &self.cfg, Arc::clone(&plan));
                    plan
                }
            },
            None => {
                let (ir, deltas) = Pipeline::standard().plan(self.scenario, &self.cfg, self.pre)?;
                Arc::new(OwnedPlan::capture(self.scenario, &ir, &deltas))
            }
        };
        let no_faults = FaultPlan::none();
        let faults = self.faults.unwrap_or(&no_faults);
        let mut builder = self.builder;
        let (machine, kernel, device) = execute_prefix_pooled(
            PrefixView::of_owned(&plan, self.scenario),
            faults,
            false,
            builder.as_deref_mut(),
        );
        let bytes = snapshot::save(&machine)?;
        // The prefix machine's job ends at the snapshot: recycle its
        // allocations for the resumes that follow.
        if let Some(b) = builder {
            b.recycle(machine);
        }
        Ok(Checkpoint {
            phase,
            config_hash: plan.machine_hash(),
            plan,
            bytes,
            kernel,
            device,
            cfg: self.cfg,
        })
    }

    /// Restores `checkpoint` and executes only the boot *suffix* (the
    /// init scheme onward) under this request's configuration. The
    /// composed timeline is bit-identical to an uninterrupted
    /// [`run`](Self::run) of the same configuration.
    ///
    /// The request's configuration must share the checkpoint's
    /// [`BbConfig::prefix_key`]; the suffix-only features
    /// (`deferred_executor`, `preparser`, `bb_group`) are free to
    /// differ, which is the whole point — one kernel simulation, many
    /// service-phase variants. A [`tweak`](Self::tweak) is applied to
    /// the resumed plan as usual.
    ///
    /// Resuming the checkpoint's own configuration on its own scenario
    /// (no tweak) additionally reuses the checkpoint's stored boot
    /// plan instead of re-planning — planning is deterministic, so the
    /// timeline is unchanged but the host-side cost drops; this is why
    /// forked boots beat full boots in `BENCH_snapshot.json`.
    ///
    /// # Errors
    ///
    /// [`Error::Checkpoint`] if telemetry is enabled, a fault plan is
    /// attached (faults are installed *before* the kernel boots, so
    /// they belong on the checkpoint request — the snapshot carries the
    /// fault state), the prefix keys differ, or the scenario's machine
    /// configuration hashes differently from the checkpoint's.
    /// [`Error::Snapshot`] if the snapshot bytes fail validation.
    pub fn resume(self, checkpoint: &Checkpoint) -> Result<Boot, Error> {
        if self.telemetry {
            return Err(Error::Checkpoint(
                "telemetry must be off to resume: the metrics sink is not snapshotted".into(),
            ));
        }
        if self.faults.is_some() {
            return Err(Error::Checkpoint(
                "a resumed boot carries the checkpoint's fault state; \
                 install the fault plan on the checkpoint request"
                    .into(),
            ));
        }
        if self.artifact.is_some() {
            return Err(Error::Checkpoint(
                "a resumed boot skips the init phase's cache load; to recover a damaged \
                 snapshot image use recovery::resume_or_cold_boot"
                    .into(),
            ));
        }
        if self.cfg.prefix_key() != checkpoint.cfg.prefix_key() {
            return Err(Error::Checkpoint(format!(
                "prefix key mismatch: checkpoint was taken under {:?}, resume requested {:?}",
                checkpoint.cfg.prefix_key(),
                self.cfg.prefix_key()
            )));
        }
        // Fast path: resuming the checkpoint's own configuration on the
        // checkpoint's own scenario (with no tweak) reuses the plan the
        // checkpoint already computed — planning is deterministic, so
        // re-running it would reproduce the same IR at a double-digit
        // share of the boot's host cost. The suffix executor borrows
        // straight out of the stored plan, so this path performs no
        // per-boot graph or task-table clones at all. Any mismatch
        // falls through to the re-planning path below, which performs
        // the authoritative validation.
        let mut builder = self.builder;
        if self.tweak.is_none() {
            let restore =
                |builder: Option<&mut MachineBuilder>, bytes: &[u8]| -> Result<Machine, Error> {
                    Ok(match builder {
                        Some(b) => b.restore(bytes)?,
                        None => snapshot::restore(bytes)?,
                    })
                };
            if checkpoint.plan.covers(self.scenario, &self.cfg) {
                let machine = restore(builder.as_deref_mut(), &checkpoint.bytes)?;
                let (report, machine) = execute_suffix_view(
                    SuffixView::of_owned(&checkpoint.plan, self.scenario),
                    checkpoint.plan.deltas().to_vec(),
                    machine,
                    checkpoint.kernel.clone(),
                    checkpoint.device,
                );
                return Ok(Boot {
                    report,
                    machine,
                    recoveries: Vec::new(),
                });
            }
            // Second-fastest path: a plan cache hit for this (scenario,
            // config) — typically a suffix-variant resume whose plan an
            // earlier job already compiled. Same zero-clone suffix
            // execution as above, with the checkpoint compatibility
            // pinned by the machine-config hash.
            if let Some((cache, key)) = self.cache {
                if let Some(plan) = cache.lookup(key, &self.cfg) {
                    if plan.covers(self.scenario, &self.cfg)
                        && plan.machine_hash() == checkpoint.config_hash
                    {
                        let machine = restore(builder.as_deref_mut(), &checkpoint.bytes)?;
                        let (report, machine) = execute_suffix_view(
                            SuffixView::of_owned(&plan, self.scenario),
                            plan.deltas().to_vec(),
                            machine,
                            checkpoint.kernel.clone(),
                            checkpoint.device,
                        );
                        return Ok(Boot {
                            report,
                            machine,
                            recoveries: Vec::new(),
                        });
                    }
                }
            }
        }
        let pipeline = Pipeline::standard();
        let (mut ir, deltas) = pipeline.plan(self.scenario, &self.cfg, self.pre)?;
        if snapshot::config_hash(&ir.machine) != checkpoint.config_hash {
            return Err(Error::Checkpoint(
                "machine config mismatch: the scenario does not match the checkpoint's".into(),
            ));
        }
        match self.tweak {
            Some(tweak) => {
                let BootPlanIr {
                    ref graph,
                    ref transaction,
                    ref mut overrides,
                    ..
                } = ir;
                tweak(graph, transaction, overrides);
            }
            None => {
                // Publish the freshly compiled plan so the next resume
                // of this (scenario, config) takes the cached path.
                if let Some((cache, key)) = self.cache {
                    cache.insert(
                        key,
                        &self.cfg,
                        Arc::new(OwnedPlan::capture(self.scenario, &ir, &deltas)),
                    );
                }
            }
        }
        let machine = match builder {
            Some(b) => b.restore(&checkpoint.bytes)?,
            None => snapshot::restore(&checkpoint.bytes)?,
        };
        let (report, machine) = execute_suffix(
            &ir,
            deltas,
            machine,
            checkpoint.kernel.clone(),
            checkpoint.device,
        );
        Ok(Boot {
            report,
            machine,
            recoveries: Vec::new(),
        })
    }

    /// Plans and executes the boot. A supplied
    /// [`preparse_artifact`](Self::preparse_artifact) is validated
    /// first; recoveries land on [`Boot::recoveries`].
    pub fn run(mut self) -> Result<Boot, Error> {
        use crate::recovery::{validate_preparse_blob, ArtifactVerdict, RecoveryEvent};
        let mut recoveries = Vec::new();
        if let Some(read) = self.artifact.take() {
            if self.cfg.preparser {
                let built;
                let pre = match self.pre {
                    Some(p) => p,
                    None => {
                        built = PreParser::build(&self.scenario.units);
                        &built
                    }
                };
                match validate_preparse_blob(
                    read,
                    &self.scenario.units,
                    pre,
                    &self.scenario.parse_params,
                    &self.scenario.storage,
                ) {
                    ArtifactVerdict::Accepted { retries: 0, .. } => {}
                    ArtifactVerdict::Accepted {
                        retries,
                        retry_cost,
                    } => {
                        recoveries.push(RecoveryEvent::transient_ok(
                            crate::recovery::ArtifactKind::PreparseBlob,
                            retries,
                            retry_cost,
                        ));
                    }
                    ArtifactVerdict::Rejected(ev) => {
                        // The cache is gone; this boot pays the
                        // conventional parse path, exactly as a device
                        // whose blob was discarded would.
                        self.cfg.preparser = false;
                        recoveries.push(ev);
                    }
                }
            }
        }
        let mut boot = self.execute()?;
        boot.recoveries = recoveries;
        Ok(boot)
    }

    /// The planning/execution body shared by the cached and plain
    /// paths (artifact validation already resolved by `run`).
    fn execute(self) -> Result<Boot, Error> {
        let no_faults = FaultPlan::none();
        // Cached path: a plan compiled earlier for this (scenario,
        // config) is executed as-is — prefix and suffix both borrow out
        // of the shared `OwnedPlan`, so a cache hit re-plans nothing
        // and clones nothing. Tweaked requests never share plans.
        if self.tweak.is_none() {
            if let Some((cache, key)) = self.cache {
                if let Some(plan) = cache.lookup(key, &self.cfg) {
                    let faults = self.faults.unwrap_or(&no_faults);
                    let (report, machine) = execute_pooled_owned(
                        &plan,
                        self.scenario,
                        faults,
                        self.telemetry,
                        self.builder,
                    );
                    return Ok(Boot {
                        report,
                        machine,
                        recoveries: Vec::new(),
                    });
                }
            }
        }
        let pipeline = Pipeline::standard();
        let (mut ir, deltas) = pipeline.plan(self.scenario, &self.cfg, self.pre)?;
        match self.tweak {
            Some(tweak) => {
                let BootPlanIr {
                    ref graph,
                    ref transaction,
                    ref mut overrides,
                    ..
                } = ir;
                tweak(graph, transaction, overrides);
            }
            None => {
                if let Some((cache, key)) = self.cache {
                    cache.insert(
                        key,
                        &self.cfg,
                        Arc::new(OwnedPlan::capture(self.scenario, &ir, &deltas)),
                    );
                }
            }
        }
        let faults = self.faults.unwrap_or(&no_faults);
        let (report, machine) = execute_pooled(&ir, deltas, faults, self.telemetry, self.builder);
        Ok(Boot {
            report,
            machine,
            recoveries: Vec::new(),
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use bb_init::{ServiceBody, ServiceType, TransactionError};
    use bb_kernel::{
        synthetic_catalog, Criticality, Initcall, InitcallLevel, InitcallRegistry, MemoryPlan,
        RootfsPlan,
    };
    use bb_sim::{DeviceId, OpsBuilder, RcuMode, RcuParams, SimDuration};

    /// A miniature TV scenario: a BB group chain (var.mount → dbus →
    /// tuner → fasttv) plus a handful of heavy non-critical services.
    pub(crate) fn mini_tv() -> Scenario {
        let mut units = vec![
            Unit::new(UnitName::new("tv-boot.target"))
                .requires("fasttv.service")
                .requires("store.service")
                .requires("voice.service")
                .requires("browser.service"),
            Unit::new(UnitName::new("var.mount"))
                .with_type(ServiceType::Oneshot)
                .with_exec("mount:/var"),
            Unit::new(UnitName::new("dbus.service"))
                .needs("var.mount")
                .with_type(ServiceType::Forking)
                .with_exec("dbus"),
            Unit::new(UnitName::new("tuner.service"))
                .needs("dbus.service")
                .with_type(ServiceType::Forking)
                .with_exec("tuner"),
            Unit::new(UnitName::new("fasttv.service"))
                .needs("tuner.service")
                .with_type(ServiceType::Forking)
                .with_exec("fasttv"),
        ];
        // Non-critical heavies; two abuse Before=var.mount to launch
        // early (§4.2) and therefore cannot also depend on dbus.
        for (i, name) in ["store", "voice", "browser"].iter().enumerate() {
            let mut u = Unit::new(UnitName::new(format!("{name}.service")))
                .with_type(ServiceType::Forking)
                .with_exec("heavy");
            if i < 2 {
                u = u.before("var.mount");
            } else {
                u = u.needs("dbus.service");
            }
            units.push(u);
        }

        let mut workloads = WorkloadMap::new();
        let dev = DeviceId::from_raw(0);
        workloads.insert(
            "mount:/var".into(),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .read_rand(dev, 256 * 1024)
                    .compute_ms(4)
                    .build(),
                post_ready: Vec::new(),
            },
        );
        workloads.insert(
            "dbus".into(),
            ServiceBody {
                pre_ready: OpsBuilder::new().compute_ms(8).build(),
                post_ready: OpsBuilder::new().compute_ms(3).build(),
            },
        );
        for k in ["tuner", "fasttv"] {
            workloads.insert(
                k.into(),
                ServiceBody {
                    pre_ready: OpsBuilder::new()
                        .compute_ms(10)
                        .rcu_syncs(12, SimDuration::from_micros(200))
                        .build(),
                    post_ready: Vec::new(),
                },
            );
        }
        workloads.insert(
            "heavy".into(),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .compute_ms(40)
                    .rcu_syncs(30, SimDuration::from_micros(200))
                    .read_rand(dev, 512 * 1024)
                    .build(),
                post_ready: Vec::new(),
            },
        );

        let mut initcalls = InitcallRegistry::new();
        initcalls.register(Initcall::new(
            "emmc",
            InitcallLevel::Subsys,
            SimDuration::from_millis(30),
            Criticality::BootCritical,
        ));
        initcalls.register(Initcall::new(
            "usb",
            InitcallLevel::Device,
            SimDuration::from_millis(40),
            Criticality::Deferrable,
        ));

        Scenario {
            name: "mini-tv".into(),
            machine: MachineConfig {
                cores: 4,
                rcu_params: RcuParams::default(),
                rcu_mode: RcuMode::ClassicSpin,
                ..MachineConfig::default()
            },
            storage: DeviceProfile::tv_emmc(),
            kernel: KernelPlan {
                bootloader: SimDuration::from_millis(80),
                image_bytes: 10 * bb_sim::MIB,
                memory: MemoryPlan::tv_1gib(),
                initcalls,
                rootfs: RootfsPlan::tv_emmc(),
                misc: SimDuration::from_millis(60),
                defer_memory: false,
                defer_initcalls: false,
                defer_journal: false,
            },
            modules: synthetic_catalog(60),
            units,
            workloads,
            target: "tv-boot.target".into(),
            completion: vec![UnitName::new("fasttv.service")],
            manager_costs: ManagerCosts::default(),
            parse_params: ParseCostParams::default(),
            extra_init_tasks: Vec::new(),
        }
    }

    fn boost(s: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, Error> {
        BootRequest::new(s).config(*cfg).run().map(|b| b.report)
    }

    #[test]
    fn conventional_boot_completes() {
        let s = mini_tv();
        let r = boost(&s, &BbConfig::conventional()).unwrap();
        assert!(r.boot.completion_time.is_some());
        assert!(r.boot.outcome.failed.is_empty());
        assert!(r.bb_group.is_empty());
        assert!(r.quiesce_time >= r.boot_time());
    }

    #[test]
    fn full_bb_is_faster_than_conventional() {
        let s = mini_tv();
        let conv = boost(&s, &BbConfig::conventional()).unwrap();
        let bb = boost(&s, &BbConfig::full()).unwrap();
        assert!(
            bb.boot_time() < conv.boot_time(),
            "BB {} not faster than conventional {}",
            bb.boot_time(),
            conv.boot_time()
        );
        assert_eq!(
            bb.bb_group,
            [
                "var.mount",
                "dbus.service",
                "tuner.service",
                "fasttv.service"
            ]
            .map(UnitName::new)
        );
    }

    #[test]
    fn every_single_feature_helps_or_is_neutral() {
        let s = mini_tv();
        let conv = boost(&s, &BbConfig::conventional()).unwrap().boot_time();
        for (name, cfg) in BbConfig::single_feature_configs() {
            let t = boost(&s, &cfg).unwrap().boot_time();
            // The RCU Booster is allowed a small regression here: this
            // mini scenario has little writer contention, which is
            // exactly the regime where the paper keeps the classic path
            // (§4.3). The full TV scenario asserts the win (bb-bench).
            let slack = if name == "rcu_booster" {
                8_000_000
            } else {
                2_000_000
            };
            assert!(
                t.as_nanos() <= conv.as_nanos() + slack,
                "feature {name} hurt boot: {t} vs {conv}"
            );
        }
    }

    #[test]
    fn rcu_booster_switches_modes_across_completion() {
        let s = mini_tv();
        let r = boost(&s, &BbConfig::full()).unwrap();
        // Boot-time syncs were boosted; the control process reverted the
        // mode afterwards.
        assert!(r.rcu.boosted_syncs > 0);
    }

    #[test]
    fn deferred_work_extends_quiesce_past_completion() {
        let s = mini_tv();
        let r = boost(&s, &BbConfig::full()).unwrap();
        assert!(
            r.quiesce_time > r.boot_time(),
            "deferred work should continue after completion"
        );
    }

    #[test]
    fn recycled_builder_matches_fresh_event_for_event() {
        let s = mini_tv();
        let mut builder = MachineBuilder::new();
        for cfg in [BbConfig::conventional(), BbConfig::full()] {
            let fresh = BootRequest::new(&s).config(cfg).run().unwrap();
            // The second boot builds its machine from the first boot's
            // recycled buffers; capacity reuse must not be observable.
            builder.recycle(BootRequest::new(&s).config(cfg).run().unwrap().machine);
            let pooled = BootRequest::new(&s)
                .config(cfg)
                .machine_builder(&mut builder)
                .run()
                .unwrap();
            assert_eq!(
                fresh.report.boot.completion_time,
                pooled.report.boot.completion_time
            );
            assert_eq!(fresh.report.quiesce_time, pooled.report.quiesce_time);
            let a = fresh.machine.trace().events();
            let b = pooled.machine.trace().events();
            assert_eq!(a.len(), b.len(), "event counts diverge");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x, y, "trace event diverges");
            }
        }
    }

    #[test]
    fn builder_prepared_matches_unprepared() {
        let s = mini_tv();
        let pre = PreParser::build(&s.units);
        let plain = BootRequest::new(&s).run().unwrap();
        let prepared = BootRequest::new(&s).prepared(&pre).run().unwrap();
        assert_eq!(
            plain.report.boot.completion_time,
            prepared.report.boot.completion_time
        );
    }

    #[test]
    fn builder_tweak_adjusts_overrides() {
        let s = mini_tv();
        let boot = BootRequest::new(&s)
            .config(BbConfig::conventional())
            .tweak(|graph, _tx, overrides| {
                overrides.isolate.insert(graph.idx_of("var.mount"));
            })
            .run()
            .unwrap();
        assert_eq!(boot.report.bb_group, [UnitName::new("var.mount")]);
    }

    /// The load-bearing checkpoint property: split the boot at the
    /// kernel→init handoff and the composed timeline is bit-identical
    /// to the uninterrupted run, event for event, for both ends of the
    /// config spectrum.
    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let s = mini_tv();
        for cfg in [BbConfig::conventional(), BbConfig::full()] {
            let straight = BootRequest::new(&s).config(cfg).run().unwrap();
            let ckpt = BootRequest::new(&s)
                .config(cfg)
                .checkpoint_at(CheckpointPhase::KernelHandoff)
                .unwrap();
            let resumed = BootRequest::new(&s).config(cfg).resume(&ckpt).unwrap();
            assert_eq!(
                straight.report.boot.completion_time,
                resumed.report.boot.completion_time
            );
            assert_eq!(straight.report.quiesce_time, resumed.report.quiesce_time);
            assert_eq!(straight.report.rcu, resumed.report.rcu);
            let a = straight.machine.trace().events();
            let b = resumed.machine.trace().events();
            assert_eq!(a.len(), b.len(), "event counts diverge");
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x, y, "trace event diverges");
            }
        }
    }

    /// One checkpoint, many suffix variants: resuming under a config
    /// that differs only in suffix features matches that config's
    /// uninterrupted run.
    #[test]
    fn one_checkpoint_serves_every_suffix_config() {
        let s = mini_tv();
        let base = BbConfig::full();
        let ckpt = BootRequest::new(&s)
            .config(base)
            .checkpoint_at(CheckpointPhase::KernelHandoff)
            .unwrap();
        for cfg in [
            base,
            BbConfig {
                bb_group: false,
                ..base
            },
            BbConfig {
                preparser: false,
                deferred_executor: false,
                ..base
            },
        ] {
            assert_eq!(cfg.prefix_key(), base.prefix_key());
            let straight = BootRequest::new(&s).config(cfg).run().unwrap();
            let resumed = BootRequest::new(&s).config(cfg).resume(&ckpt).unwrap();
            assert_eq!(straight.report.boot_time(), resumed.report.boot_time());
            assert_eq!(straight.report.quiesce_time, resumed.report.quiesce_time);
            assert_eq!(straight.report.bb_group, resumed.report.bb_group);
        }
    }

    #[test]
    fn checkpoint_rejects_incompatible_requests() {
        let s = mini_tv();
        // Telemetry is not snapshotted.
        assert!(matches!(
            BootRequest::new(&s)
                .telemetry(true)
                .checkpoint_at(CheckpointPhase::KernelHandoff),
            Err(Error::Checkpoint(_))
        ));
        // Tweaks act on the suffix plan.
        assert!(matches!(
            BootRequest::new(&s)
                .tweak(|_, _, _| {})
                .checkpoint_at(CheckpointPhase::KernelHandoff),
            Err(Error::Checkpoint(_))
        ));

        let ckpt = BootRequest::new(&s)
            .checkpoint_at(CheckpointPhase::KernelHandoff)
            .unwrap();
        assert_eq!(ckpt.phase(), CheckpointPhase::KernelHandoff);
        assert_eq!(ckpt.config(), BbConfig::full());
        // Prefix keys must match: conventional differs from full in
        // every kernel-phase feature.
        assert!(matches!(
            BootRequest::new(&s)
                .config(BbConfig::conventional())
                .resume(&ckpt),
            Err(Error::Checkpoint(_))
        ));
        // Faults belong on the checkpoint request.
        let faults = FaultPlan::none();
        assert!(matches!(
            BootRequest::new(&s).faults(&faults).resume(&ckpt),
            Err(Error::Checkpoint(_))
        ));
        // Telemetry rejected on resume too.
        assert!(matches!(
            BootRequest::new(&s).telemetry(true).resume(&ckpt),
            Err(Error::Checkpoint(_))
        ));
        // A different machine shape is caught by the config hash even
        // though the prefix key matches.
        let mut other = mini_tv();
        other.machine.cores = 2;
        assert!(matches!(
            BootRequest::new(&other).resume(&ckpt),
            Err(Error::Checkpoint(_))
        ));
    }

    /// A tweak on the *resume* request adjusts the suffix plan, exactly
    /// as it would on an uninterrupted run.
    #[test]
    fn resume_applies_suffix_tweaks() {
        let s = mini_tv();
        let ckpt = BootRequest::new(&s)
            .config(BbConfig::conventional())
            .checkpoint_at(CheckpointPhase::KernelHandoff)
            .unwrap();
        let boot = BootRequest::new(&s)
            .config(BbConfig::conventional())
            .tweak(|graph, _tx, overrides| {
                overrides.isolate.insert(graph.idx_of("var.mount"));
            })
            .resume(&ckpt)
            .unwrap();
        assert_eq!(boot.report.bb_group, [UnitName::new("var.mount")]);
    }

    #[test]
    fn unknown_target_is_reported() {
        let mut s = mini_tv();
        s.target = "ghost.target".into();
        assert!(matches!(
            boost(&s, &BbConfig::full()),
            Err(Error::Transaction(TransactionError::UnknownTarget(_)))
        ));
    }
}
