//! The Booting Booster facade: run a full boot scenario under any
//! [`BbConfig`] and get back the timeline every experiment reads.
//!
//! A [`Scenario`] bundles the hardware profile, the kernel plan, the
//! unit set, the service workload bodies, and the boot-completion
//! definition. Every entry point here is a thin wrapper over the pass
//! pipeline ([`crate::pipeline::Pipeline`]): the scenario is lowered to
//! a [`crate::pipeline::BootPlanIr`], the enabled [`PlanPass`]es
//! transform it (recording a [`PassDelta`] each), and
//! [`crate::pipeline::execute`] runs the boot end to end.
//!
//! [`PlanPass`]: crate::pipeline::PlanPass
//! [`PassDelta`]: crate::pipeline::PassDelta

use bb_init::{
    BootRecord, ManagerCosts, Transaction, TransactionError, Unit, UnitGraph, UnitName, WorkloadMap,
};
use bb_kernel::{KernelPlan, KernelReport, ModuleCatalog};
use bb_sim::{DeviceProfile, Machine, MachineConfig, RcuStats, SimTime};

use crate::config::BbConfig;
use crate::pipeline::{PassDelta, Pipeline};
use crate::service_engine::{ParseCostParams, PreParser};

/// A complete boot scenario (hardware + software + completion policy).
///
/// By convention the boot storage device is the machine's device 0;
/// workload bodies that read storage use `DeviceId::from_raw(0)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name, for reports.
    pub name: String,
    /// Machine shape (cores, speed, quantum, RCU parameters).
    pub machine: MachineConfig,
    /// Boot storage profile.
    pub storage: DeviceProfile,
    /// Kernel plan (defer flags are overwritten per config).
    pub kernel: KernelPlan,
    /// Loadable kernel components.
    pub modules: ModuleCatalog,
    /// The unit set.
    pub units: Vec<Unit>,
    /// Service workload bodies keyed by `ExecStart=`.
    pub workloads: WorkloadMap,
    /// Boot target to expand.
    pub target: String,
    /// Units whose readiness defines boot completion.
    pub completion: Vec<UnitName>,
    /// Manager cost knobs.
    pub manager_costs: ManagerCosts,
    /// Unit-configuration parse cost parameters.
    pub parse_params: ParseCostParams,
    /// Additional init-phase tasks prepended to the Boot-up Engine's
    /// table (experiment hooks, e.g. pre-fork zygote setup).
    pub extra_init_tasks: Vec<bb_init::ManagerTask>,
}

/// Everything measured from one boosted (or conventional) boot.
#[derive(Debug)]
pub struct FullBootReport {
    /// The configuration that ran.
    pub config: BbConfig,
    /// Kernel phase timings.
    pub kernel: KernelReport,
    /// Init/service phase record.
    pub boot: BootRecord,
    /// RCU engine statistics.
    pub rcu: RcuStats,
    /// Identified BB Group (empty when `bb_group` is off).
    pub bb_group: Vec<UnitName>,
    /// Time the machine went fully quiescent (deferred work included).
    pub quiesce_time: SimTime,
    /// Per-pass provenance: what each enabled [`crate::pipeline::PlanPass`]
    /// changed in the plan (empty for a conventional boot).
    pub deltas: Vec<PassDelta>,
}

impl FullBootReport {
    /// Boot time from power-on to the completion definition.
    ///
    /// # Panics
    ///
    /// Panics if the boot never completed.
    pub fn boot_time(&self) -> SimTime {
        self.boot.boot_time()
    }

    /// Boot time, or `None` if the completion definition was never met
    /// (a hung boot). The non-panicking form for sweep workers.
    pub fn try_boot_time(&self) -> Option<SimTime> {
        self.boot.try_boot_time()
    }
}

/// Errors assembling a scenario run.
#[derive(Debug)]
pub enum BoostError {
    /// The unit set is malformed.
    Graph(bb_init::GraphError),
    /// The transaction could not be built.
    Transaction(TransactionError),
}

impl std::fmt::Display for BoostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoostError::Graph(e) => write!(f, "unit graph error: {e}"),
            BoostError::Transaction(e) => write!(f, "transaction error: {e}"),
        }
    }
}

impl std::error::Error for BoostError {}

/// Runs `scenario` under `cfg`. See [`boost_with_machine`] to also get
/// the machine (for bootcharts).
pub fn boost(scenario: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, BoostError> {
    boost_with_machine(scenario, cfg).map(|(r, _)| r)
}

/// Runs `scenario` under `cfg`, returning the report and the machine
/// whose trace produced it.
pub fn boost_with_machine(
    scenario: &Scenario,
    cfg: &BbConfig,
) -> Result<(FullBootReport, Machine), BoostError> {
    Pipeline::standard().run_with_machine(scenario, cfg)
}

/// Runs `scenario` under `cfg` with the unit set's [`PreParser`]
/// measurements already built. This is the sweep-friendly entry point:
/// a fleet runs thousands of boots of the same scenario, and building
/// the Pre-parser blob (rendering every unit file and encoding the
/// binary cache) once instead of per boot removes the dominant
/// per-boot setup cost.
///
/// `pre` must describe `scenario.units`; it is the caller's job to keep
/// them in sync (use [`PreParser::build`] on the same unit set).
pub fn boost_prepared(
    scenario: &Scenario,
    cfg: &BbConfig,
    pre: &PreParser,
) -> Result<FullBootReport, BoostError> {
    Pipeline::standard().run_prepared(scenario, cfg, pre)
}

/// Like [`boost_with_machine`], but lets the caller adjust the plan
/// overrides after the Service Engine computed them — e.g. the paper's
/// §4.2 experiment that manually adds *only* `var.mount` to the BB
/// Group without enabling the full isolator.
pub fn boost_custom(
    scenario: &Scenario,
    cfg: &BbConfig,
    tweak: impl FnOnce(&UnitGraph, &Transaction, &mut bb_init::PlanOverrides),
) -> Result<(FullBootReport, Machine), BoostError> {
    Pipeline::standard().run_custom(scenario, cfg, tweak)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use bb_init::{ServiceBody, ServiceType};
    use bb_kernel::{
        synthetic_catalog, Criticality, Initcall, InitcallLevel, InitcallRegistry, MemoryPlan,
        RootfsPlan,
    };
    use bb_sim::{DeviceId, OpsBuilder, RcuMode, RcuParams, SimDuration};

    /// A miniature TV scenario: a BB group chain (var.mount → dbus →
    /// tuner → fasttv) plus a handful of heavy non-critical services.
    pub(crate) fn mini_tv() -> Scenario {
        let mut units = vec![
            Unit::new(UnitName::new("tv-boot.target"))
                .requires("fasttv.service")
                .requires("store.service")
                .requires("voice.service")
                .requires("browser.service"),
            Unit::new(UnitName::new("var.mount"))
                .with_type(ServiceType::Oneshot)
                .with_exec("mount:/var"),
            Unit::new(UnitName::new("dbus.service"))
                .needs("var.mount")
                .with_type(ServiceType::Forking)
                .with_exec("dbus"),
            Unit::new(UnitName::new("tuner.service"))
                .needs("dbus.service")
                .with_type(ServiceType::Forking)
                .with_exec("tuner"),
            Unit::new(UnitName::new("fasttv.service"))
                .needs("tuner.service")
                .with_type(ServiceType::Forking)
                .with_exec("fasttv"),
        ];
        // Non-critical heavies; two abuse Before=var.mount to launch
        // early (§4.2) and therefore cannot also depend on dbus.
        for (i, name) in ["store", "voice", "browser"].iter().enumerate() {
            let mut u = Unit::new(UnitName::new(format!("{name}.service")))
                .with_type(ServiceType::Forking)
                .with_exec("heavy");
            if i < 2 {
                u = u.before("var.mount");
            } else {
                u = u.needs("dbus.service");
            }
            units.push(u);
        }

        let mut workloads = WorkloadMap::new();
        let dev = DeviceId::from_raw(0);
        workloads.insert(
            "mount:/var".into(),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .read_rand(dev, 256 * 1024)
                    .compute_ms(4)
                    .build(),
                post_ready: Vec::new(),
            },
        );
        workloads.insert(
            "dbus".into(),
            ServiceBody {
                pre_ready: OpsBuilder::new().compute_ms(8).build(),
                post_ready: OpsBuilder::new().compute_ms(3).build(),
            },
        );
        for k in ["tuner", "fasttv"] {
            workloads.insert(
                k.into(),
                ServiceBody {
                    pre_ready: OpsBuilder::new()
                        .compute_ms(10)
                        .rcu_syncs(12, SimDuration::from_micros(200))
                        .build(),
                    post_ready: Vec::new(),
                },
            );
        }
        workloads.insert(
            "heavy".into(),
            ServiceBody {
                pre_ready: OpsBuilder::new()
                    .compute_ms(40)
                    .rcu_syncs(30, SimDuration::from_micros(200))
                    .read_rand(dev, 512 * 1024)
                    .build(),
                post_ready: Vec::new(),
            },
        );

        let mut initcalls = InitcallRegistry::new();
        initcalls.register(Initcall::new(
            "emmc",
            InitcallLevel::Subsys,
            SimDuration::from_millis(30),
            Criticality::BootCritical,
        ));
        initcalls.register(Initcall::new(
            "usb",
            InitcallLevel::Device,
            SimDuration::from_millis(40),
            Criticality::Deferrable,
        ));

        Scenario {
            name: "mini-tv".into(),
            machine: MachineConfig {
                cores: 4,
                rcu_params: RcuParams::default(),
                rcu_mode: RcuMode::ClassicSpin,
                ..MachineConfig::default()
            },
            storage: DeviceProfile::tv_emmc(),
            kernel: KernelPlan {
                bootloader: SimDuration::from_millis(80),
                image_bytes: 10 * bb_sim::MIB,
                memory: MemoryPlan::tv_1gib(),
                initcalls,
                rootfs: RootfsPlan::tv_emmc(),
                misc: SimDuration::from_millis(60),
                defer_memory: false,
                defer_initcalls: false,
                defer_journal: false,
            },
            modules: synthetic_catalog(60),
            units,
            workloads,
            target: "tv-boot.target".into(),
            completion: vec![UnitName::new("fasttv.service")],
            manager_costs: ManagerCosts::default(),
            parse_params: ParseCostParams::default(),
            extra_init_tasks: Vec::new(),
        }
    }

    #[test]
    fn conventional_boot_completes() {
        let s = mini_tv();
        let r = boost(&s, &BbConfig::conventional()).unwrap();
        assert!(r.boot.completion_time.is_some());
        assert!(r.boot.outcome.failed.is_empty());
        assert!(r.bb_group.is_empty());
        assert!(r.quiesce_time >= r.boot_time());
    }

    #[test]
    fn full_bb_is_faster_than_conventional() {
        let s = mini_tv();
        let conv = boost(&s, &BbConfig::conventional()).unwrap();
        let bb = boost(&s, &BbConfig::full()).unwrap();
        assert!(
            bb.boot_time() < conv.boot_time(),
            "BB {} not faster than conventional {}",
            bb.boot_time(),
            conv.boot_time()
        );
        assert_eq!(
            bb.bb_group,
            [
                "var.mount",
                "dbus.service",
                "tuner.service",
                "fasttv.service"
            ]
            .map(UnitName::new)
        );
    }

    #[test]
    fn every_single_feature_helps_or_is_neutral() {
        let s = mini_tv();
        let conv = boost(&s, &BbConfig::conventional()).unwrap().boot_time();
        for (name, cfg) in BbConfig::single_feature_configs() {
            let t = boost(&s, &cfg).unwrap().boot_time();
            // The RCU Booster is allowed a small regression here: this
            // mini scenario has little writer contention, which is
            // exactly the regime where the paper keeps the classic path
            // (§4.3). The full TV scenario asserts the win (bb-bench).
            let slack = if name == "rcu_booster" {
                8_000_000
            } else {
                2_000_000
            };
            assert!(
                t.as_nanos() <= conv.as_nanos() + slack,
                "feature {name} hurt boot: {t} vs {conv}"
            );
        }
    }

    #[test]
    fn rcu_booster_switches_modes_across_completion() {
        let s = mini_tv();
        let r = boost(&s, &BbConfig::full()).unwrap();
        // Boot-time syncs were boosted; the control process reverted the
        // mode afterwards.
        assert!(r.rcu.boosted_syncs > 0);
    }

    #[test]
    fn deferred_work_extends_quiesce_past_completion() {
        let s = mini_tv();
        let r = boost(&s, &BbConfig::full()).unwrap();
        assert!(
            r.quiesce_time > r.boot_time(),
            "deferred work should continue after completion"
        );
    }

    #[test]
    fn unknown_target_is_reported() {
        let mut s = mini_tv();
        s.target = "ghost.target".into();
        assert!(matches!(
            boost(&s, &BbConfig::full()),
            Err(BoostError::Transaction(TransactionError::UnknownTarget(_)))
        ));
    }
}
