//! The Booting Booster's feature switches.
//!
//! Every mechanism of the paper's three engines is independently
//! toggleable, which is what the ablation experiments (and Figure 6's
//! per-feature attribution) are built on.

/// Which BB mechanisms are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbConfig {
    /// Core Engine: RCU Booster — boosted `synchronize_rcu` during boot,
    /// switched back at boot completion by RCU Booster Control (§3.1).
    pub rcu_booster: bool,
    /// Core Engine: initialize only the required memory eagerly, the
    /// rest in the background after boot (§3.1).
    pub defer_memory: bool,
    /// Core Engine: On-demand Modularizer — defer non-critical built-in
    /// kernel component initialization instead of loading external
    /// `.ko` modules during the service phase (§3.1).
    pub ondemand_modularizer: bool,
    /// Boot-up Engine: mount the rootfs read-only and enable the EXT4
    /// journal after boot completion (§3.2).
    pub defer_journal: bool,
    /// Boot-up Engine: Deferred Executor — postpone init-scheme internal
    /// tasks (logging, hostname, machine ID, loopback, test dirs, and
    /// service-phase housekeeping) past boot completion (§3.2).
    pub deferred_executor: bool,
    /// Service Engine: Pre-parser — load a binary unit cache instead of
    /// reading and parsing unit-file text at boot (§3.3).
    pub preparser: bool,
    /// Service Engine: BB Group Isolator + Booting Booster Manager —
    /// identify, isolate, and prioritize booting-critical services
    /// (§3.3).
    pub bb_group: bool,
}

impl BbConfig {
    /// Everything off: the conventional boot.
    pub const fn conventional() -> Self {
        BbConfig {
            rcu_booster: false,
            defer_memory: false,
            ondemand_modularizer: false,
            defer_journal: false,
            deferred_executor: false,
            preparser: false,
            bb_group: false,
        }
    }

    /// Everything on: the full Booting Booster.
    pub const fn full() -> Self {
        BbConfig {
            rcu_booster: true,
            defer_memory: true,
            ondemand_modularizer: true,
            defer_journal: true,
            deferred_executor: true,
            preparser: true,
            bb_group: true,
        }
    }

    /// Number of active features (for ablation reports).
    pub fn active_features(&self) -> usize {
        [
            self.rcu_booster,
            self.defer_memory,
            self.ondemand_modularizer,
            self.defer_journal,
            self.deferred_executor,
            self.preparser,
            self.bb_group,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }

    /// The full configuration packed into one byte, one bit per
    /// feature — the compact hash [`crate::PlanCache`] and the fleet's
    /// dedup keys use. Two configs are equal iff their bits are equal.
    pub fn bits(&self) -> u8 {
        (self.rcu_booster as u8)
            | (self.defer_memory as u8) << 1
            | (self.ondemand_modularizer as u8) << 2
            | (self.defer_journal as u8) << 3
            | (self.deferred_executor as u8) << 4
            | (self.preparser as u8) << 5
            | (self.bb_group as u8) << 6
    }

    /// The features that shape the boot *prefix* — everything simulated
    /// before the kernel→init handoff (kernel boot, RCU Booster Control
    /// installation, module loading setup). Two configurations with
    /// equal prefix keys produce bit-identical machines at the handoff,
    /// so a checkpoint taken under one can be resumed under the other;
    /// this is what lets a forked fleet sweep simulate the shared
    /// kernel phase once per key instead of once per configuration.
    ///
    /// `deferred_executor`, `preparser`, and `bb_group` act entirely in
    /// the init/service phase and are deliberately excluded.
    pub fn prefix_key(&self) -> (bool, bool, bool, bool) {
        (
            self.rcu_booster,
            self.defer_memory,
            self.ondemand_modularizer,
            self.defer_journal,
        )
    }

    /// The CLI/wire feature names, in `bits()` order. `"all"`, `"full"`,
    /// `"none"`, `"conventional"`, and comma-separated subsets of these
    /// are what [`BbConfig::from_feature_list`] accepts.
    pub const FEATURE_NAMES: [&'static str; 7] = [
        "rcu-booster",
        "defer-memory",
        "modularizer",
        "defer-journal",
        "deferred-executor",
        "preparser",
        "bb-group",
    ];

    /// Parses a feature-list string — the `--features` CLI value and the
    /// fleet wire format's `"features"` field: `"all"`/`"full"` for the
    /// full Booting Booster, `"none"`/`"conventional"` for everything
    /// off, or a comma-separated subset of [`BbConfig::FEATURE_NAMES`].
    pub fn from_feature_list(spec: &str) -> Result<Self, String> {
        match spec {
            "all" | "full" => return Ok(BbConfig::full()),
            "none" | "conventional" => return Ok(BbConfig::conventional()),
            _ => {}
        }
        let mut cfg = BbConfig::conventional();
        for feature in spec.split(',') {
            match feature.trim() {
                "rcu-booster" => cfg.rcu_booster = true,
                "defer-memory" => cfg.defer_memory = true,
                "modularizer" => cfg.ondemand_modularizer = true,
                "defer-journal" => cfg.defer_journal = true,
                "deferred-executor" => cfg.deferred_executor = true,
                "preparser" => cfg.preparser = true,
                "bb-group" => cfg.bb_group = true,
                other => {
                    return Err(format!(
                        "unknown feature {other:?} (expected all, none, or a comma-separated \
                         subset of {})",
                        Self::FEATURE_NAMES.join(",")
                    ))
                }
            }
        }
        Ok(cfg)
    }

    /// Renders this configuration as a canonical feature-list string
    /// that [`BbConfig::from_feature_list`] round-trips: `"all"`,
    /// `"none"`, or the active subset of [`BbConfig::FEATURE_NAMES`] in
    /// `bits()` order.
    pub fn feature_list(&self) -> String {
        if *self == BbConfig::full() {
            return "all".to_owned();
        }
        if *self == BbConfig::conventional() {
            return "none".to_owned();
        }
        let bits = self.bits();
        let active: Vec<&str> = Self::FEATURE_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, name)| *name)
            .collect();
        active.join(",")
    }

    /// All single-feature configurations, as `(feature name, config)` —
    /// the conventional boot with exactly one mechanism enabled.
    pub fn single_feature_configs() -> Vec<(&'static str, BbConfig)> {
        let base = BbConfig::conventional();
        vec![
            (
                "rcu_booster",
                BbConfig {
                    rcu_booster: true,
                    ..base
                },
            ),
            (
                "defer_memory",
                BbConfig {
                    defer_memory: true,
                    ..base
                },
            ),
            (
                "ondemand_modularizer",
                BbConfig {
                    ondemand_modularizer: true,
                    ..base
                },
            ),
            (
                "defer_journal",
                BbConfig {
                    defer_journal: true,
                    ..base
                },
            ),
            (
                "deferred_executor",
                BbConfig {
                    deferred_executor: true,
                    ..base
                },
            ),
            (
                "preparser",
                BbConfig {
                    preparser: true,
                    ..base
                },
            ),
            (
                "bb_group",
                BbConfig {
                    bb_group: true,
                    ..base
                },
            ),
        ]
    }

    /// All leave-one-out configurations, as `(dropped feature, config)` —
    /// the full BB with exactly one mechanism disabled.
    pub fn leave_one_out_configs() -> Vec<(&'static str, BbConfig)> {
        let full = BbConfig::full();
        vec![
            (
                "rcu_booster",
                BbConfig {
                    rcu_booster: false,
                    ..full
                },
            ),
            (
                "defer_memory",
                BbConfig {
                    defer_memory: false,
                    ..full
                },
            ),
            (
                "ondemand_modularizer",
                BbConfig {
                    ondemand_modularizer: false,
                    ..full
                },
            ),
            (
                "defer_journal",
                BbConfig {
                    defer_journal: false,
                    ..full
                },
            ),
            (
                "deferred_executor",
                BbConfig {
                    deferred_executor: false,
                    ..full
                },
            ),
            (
                "preparser",
                BbConfig {
                    preparser: false,
                    ..full
                },
            ),
            (
                "bb_group",
                BbConfig {
                    bb_group: false,
                    ..full
                },
            ),
        ]
    }
}

impl Default for BbConfig {
    fn default() -> Self {
        BbConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_has_nothing_full_has_everything() {
        assert_eq!(BbConfig::conventional().active_features(), 0);
        assert_eq!(BbConfig::full().active_features(), 7);
    }

    #[test]
    fn bits_are_a_faithful_config_hash() {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        let mut all: Vec<BbConfig> = vec![BbConfig::conventional(), BbConfig::full()];
        all.extend(
            BbConfig::single_feature_configs()
                .into_iter()
                .map(|(_, c)| c),
        );
        all.extend(
            BbConfig::leave_one_out_configs()
                .into_iter()
                .map(|(_, c)| c),
        );
        for c in &all {
            assert_eq!(c.bits().count_ones() as usize, c.active_features());
            seen.insert(c.bits());
        }
        // conventional + full + 7 singles + 7 leave-one-outs are all
        // distinct configs, so their bit patterns must be too.
        assert_eq!(seen.len(), all.len());
    }

    #[test]
    fn ablation_sets_cover_every_feature_once() {
        let singles = BbConfig::single_feature_configs();
        assert_eq!(singles.len(), 7);
        assert!(singles.iter().all(|(_, c)| c.active_features() == 1));
        let loo = BbConfig::leave_one_out_configs();
        assert_eq!(loo.len(), 7);
        assert!(loo.iter().all(|(_, c)| c.active_features() == 6));
        // Names are distinct.
        let names: std::collections::BTreeSet<_> = singles.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn feature_lists_round_trip_through_the_wire_rendering() {
        let mut all: Vec<BbConfig> = vec![BbConfig::conventional(), BbConfig::full()];
        all.extend(
            BbConfig::single_feature_configs()
                .into_iter()
                .map(|(_, c)| c),
        );
        all.extend(
            BbConfig::leave_one_out_configs()
                .into_iter()
                .map(|(_, c)| c),
        );
        for c in all {
            let rendered = c.feature_list();
            assert_eq!(
                BbConfig::from_feature_list(&rendered),
                Ok(c),
                "{rendered} must round-trip"
            );
        }
        assert_eq!(BbConfig::full().feature_list(), "all");
        assert_eq!(BbConfig::conventional().feature_list(), "none");
        assert_eq!(
            BbConfig::from_feature_list("full"),
            Ok(BbConfig::full()),
            "historic spelling stays accepted"
        );
        assert!(BbConfig::from_feature_list("warp-drive").is_err());
    }
}
