//! Sweep-wide sharing of compiled boot plans.
//!
//! [`crate::Pipeline::plan`] depends only on (scenario, config) — never
//! on the seed, the fault plan, or which worker runs the boot — yet a
//! fleet sweep historically re-planned every single boot. A
//! [`PlanCache`] amortizes that: the first boot of a (scenario, config)
//! pair compiles the plan once into an [`Arc`]'d owned plan (pass
//! deltas included, `OwnedPlan` internally) and every
//! later boot — run, checkpoint, or resume, on any worker — reuses it
//! with zero clones. Attach one to a request with
//! [`crate::BootRequest::plan_cache`].
//!
//! # Keying and safety
//!
//! Entries are keyed by the scenario's **`Arc` pointer identity** plus
//! the packed [`BbConfig::bits`]. Pointer identity makes the lookup a
//! hash of two words instead of a deep scenario comparison, and it is
//! made ABA-safe by storing a [`Weak`] to the keyed scenario: the weak
//! reference keeps the `Arc` allocation alive, so its address cannot be
//! reused by a different scenario while the entry exists. A lookup
//! therefore hits only when the caller's `Arc` *is* the keyed
//! allocation — same object, not merely equal content. Callers that
//! want content-level sharing (the fleet) memoize the `Arc` itself so
//! equal scenarios become the same allocation.
//!
//! Planning is deterministic, so a cache hit returns exactly the plan a
//! fresh [`crate::Pipeline::plan`] call would produce and timelines are
//! bit-identical with the cache on or off (pinned by
//! `tests/proptest_plan_cache.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Weak};

use crate::booster::Scenario;
use crate::config::BbConfig;
use crate::pipeline::OwnedPlan;

/// Entries above which an insert first evicts entries whose scenario
/// has been dropped. Keeps a long-lived cache (a `bbsim serve`-style
/// process, a huge sweep) from accumulating dead weak references.
const PURGE_THRESHOLD: usize = 1024;

struct Entry {
    /// Keeps the keyed allocation alive (ABA guard) and tells us when
    /// the scenario is gone and the entry is purgeable.
    scenario: Weak<Scenario>,
    plan: Arc<OwnedPlan>,
}

/// A thread-safe cache of compiled boot plans, shared across every
/// run/checkpoint/resume path of a sweep (see the module docs).
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<HashMap<(usize, u8), Entry>>,
    compiled: AtomicU64,
    hits: AtomicU64,
}

/// Counter snapshot from [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Plans compiled and inserted (cache misses that planned).
    pub plans_compiled: u64,
    /// Lookups served from the cache without re-planning.
    pub hits: u64,
    /// Live entries (dropped scenarios included until purged).
    pub entries: usize,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    fn map(&self) -> MutexGuard<'_, HashMap<(usize, u8), Entry>> {
        // A worker panic caught by the fleet can never corrupt the map
        // (entries are only inserted whole), so poisoning is ignorable.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn key(scenario: &Arc<Scenario>, cfg: &BbConfig) -> (usize, u8) {
        (Arc::as_ptr(scenario) as usize, cfg.bits())
    }

    /// The cached plan for (`scenario`, `cfg`), if this exact `Arc` was
    /// inserted before.
    pub(crate) fn lookup(
        &self,
        scenario: &Arc<Scenario>,
        cfg: &BbConfig,
    ) -> Option<Arc<OwnedPlan>> {
        let map = self.map();
        let entry = map.get(&Self::key(scenario, cfg))?;
        // The weak guard makes a pointer match sufficient: the keyed
        // allocation is still alive, so an equal address is the same
        // scenario. The upgrade check is belt-and-braces.
        if entry.scenario.strong_count() == 0 {
            return None;
        }
        let plan = Arc::clone(&entry.plan);
        drop(map);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(plan)
    }

    /// Stores a freshly compiled plan for (`scenario`, `cfg`) and
    /// counts the compilation.
    pub(crate) fn insert(&self, scenario: &Arc<Scenario>, cfg: &BbConfig, plan: Arc<OwnedPlan>) {
        self.compiled.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map();
        if map.len() >= PURGE_THRESHOLD {
            map.retain(|_, e| e.scenario.strong_count() > 0);
        }
        map.insert(
            Self::key(scenario, cfg),
            Entry {
                scenario: Arc::downgrade(scenario),
                plan,
            },
        );
    }

    /// Current counters (monotonic over the cache's lifetime; callers
    /// that want per-sweep numbers snapshot before and after).
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            plans_compiled: self.compiled.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            entries: self.map().len(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map().len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.map().clear();
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("entries", &s.entries)
            .field("plans_compiled", &s.plans_compiled)
            .field("hits", &s.hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::tests::mini_tv;
    use crate::booster::BootRequest;

    #[test]
    fn hits_require_the_same_arc_not_just_equal_content() {
        let cache = PlanCache::new();
        let a = Arc::new(mini_tv());
        let b = Arc::new(mini_tv()); // equal content, different allocation
        let cfg = BbConfig::full();

        BootRequest::new(&a)
            .config(cfg)
            .plan_cache(&cache, &a)
            .run()
            .unwrap();
        assert_eq!(cache.stats().plans_compiled, 1);
        assert_eq!(cache.stats().hits, 0);

        // Same Arc: hit, no recompilation.
        BootRequest::new(&a)
            .config(cfg)
            .plan_cache(&cache, &a)
            .run()
            .unwrap();
        assert_eq!(cache.stats().plans_compiled, 1);
        assert_eq!(cache.stats().hits, 1);

        // Different allocation: compiles its own entry.
        BootRequest::new(&b)
            .config(cfg)
            .plan_cache(&cache, &b)
            .run()
            .unwrap();
        assert_eq!(cache.stats().plans_compiled, 2);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn configs_key_separately_and_clear_keeps_counters() {
        let cache = PlanCache::new();
        let s = Arc::new(mini_tv());
        for cfg in [BbConfig::conventional(), BbConfig::full()] {
            BootRequest::new(&s)
                .config(cfg)
                .plan_cache(&cache, &s)
                .run()
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().plans_compiled, 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().plans_compiled, 2);
    }

    #[test]
    fn dropped_scenarios_never_hit_and_get_purged_on_pressure() {
        let cache = PlanCache::new();
        let s = Arc::new(mini_tv());
        BootRequest::new(&s)
            .config(BbConfig::full())
            .plan_cache(&cache, &s)
            .run()
            .unwrap();
        drop(s);
        // The entry survives (weak guard) but can no longer hit.
        assert_eq!(cache.len(), 1);
        let s2 = Arc::new(mini_tv());
        assert!(cache.lookup(&s2, &BbConfig::full()).is_none());
    }
}
