//! BB→conventional fallback boot: the deployment safety net.
//!
//! The paper's §3.4 deployment discussion is blunt about the risk of an
//! aggressive boot path: a consumer-electronics device that fails to
//! boot is a brick in a living room. The mitigation shipped on the TVs
//! is a *supervised* fast path — if the BB-shaped boot misses its
//! deadline or a supervised unit exhausts its start limit, the firmware
//! falls back to the conventional boot shape, which trades speed for
//! the battle-tested plan. This module reproduces that supervisor:
//!
//! 1. run the pass-transformed (BB) plan with an optional
//!    [`FaultPlan`] installed;
//! 2. judge the attempt against a [`FallbackPolicy`];
//! 3. on failure, re-plan the *same* scenario in conventional shape
//!    (no BB pass applied) and boot again, fault-free — the transient
//!    faults the plan models (crash-on-start, flaky I/O) do not
//!    survive the implicit reboot, which is exactly why the fallback
//!    is trusted;
//! 4. report a [`DegradedBoot`] carrying **both** timelines, so a
//!    chaos sweep can price the degraded path rather than just count
//!    it.

use bb_sim::{FaultPlan, FaultTargets, SimDuration, SimTime};

use crate::booster::{FullBootReport, Scenario};
use crate::config::BbConfig;
use crate::error::Error;
use crate::pipeline::{execute_with_faults, Pipeline};
use crate::service_engine::PreParser;

/// When the boot supervisor declares the fast path failed.
#[derive(Debug, Clone, Copy)]
pub struct FallbackPolicy {
    /// Hard deadline for the BB-shaped boot. If the completion
    /// definition is not met by this time (or at all), the supervisor
    /// reboots into the conventional shape.
    pub deadline: SimDuration,
}

impl Default for FallbackPolicy {
    fn default() -> Self {
        // Generous relative to the paper's 8.1 s conventional boot: the
        // fallback should fire on genuinely wedged boots, not slow ones.
        FallbackPolicy {
            deadline: SimDuration::from_millis(15_000),
        }
    }
}

/// Why the supervisor abandoned the BB-shaped boot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// The completion definition was never met (hung dependency chain,
    /// crashed unsupervised unit, …).
    Incomplete,
    /// Completion arrived, but after the policy deadline.
    DeadlineExceeded {
        /// When the BB boot actually completed.
        completed_at: SimTime,
    },
    /// A supervised unit exhausted its `StartLimitBurst=` respawns.
    StartLimitHit {
        /// The unit that hit its start limit.
        unit: String,
    },
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::Incomplete => write!(f, "boot never completed"),
            FallbackReason::DeadlineExceeded { completed_at } => {
                write!(f, "completion at {completed_at} missed the deadline")
            }
            FallbackReason::StartLimitHit { unit } => {
                write!(f, "{unit} exhausted its start limit")
            }
        }
    }
}

impl std::error::Error for FallbackReason {}

/// A boot that needed the conventional fallback, with both timelines.
#[derive(Debug)]
pub struct DegradedBoot {
    /// The abandoned BB-shaped attempt (faults installed).
    pub bb: FullBootReport,
    /// The conventional re-boot that rescued the device.
    pub conventional: FullBootReport,
    /// What tripped the supervisor.
    pub reason: FallbackReason,
    /// User-visible boot time: time burned on the failed attempt
    /// (capped at the deadline) plus the conventional boot.
    pub total_boot: SimTime,
}

/// Outcome of a supervised boot.
#[derive(Debug)]
pub enum BootOutcome {
    /// The BB-shaped boot met the policy; no fallback needed.
    Completed(Box<FullBootReport>),
    /// The supervisor fell back to the conventional shape.
    Degraded(Box<DegradedBoot>),
}

impl BootOutcome {
    /// True if the fallback fired.
    pub fn is_degraded(&self) -> bool {
        matches!(self, BootOutcome::Degraded(_))
    }

    /// The user-visible boot time: the completion time of a clean boot,
    /// or [`DegradedBoot::total_boot`] of a degraded one.
    pub fn user_boot_time(&self) -> SimTime {
        match self {
            BootOutcome::Completed(r) => r.boot_time(),
            BootOutcome::Degraded(d) => d.total_boot,
        }
    }

    /// Total supervised respawns across all units of the (BB) attempt.
    pub fn restarts(&self) -> u32 {
        let report = match self {
            BootOutcome::Completed(r) => r,
            BootOutcome::Degraded(d) => &d.bb,
        };
        report.boot.services.values().map(|s| s.restarts).sum()
    }
}

/// Runs `scenario` under `cfg` with `faults` installed, falling back to
/// a fault-free conventional boot when `policy` is violated.
///
/// `pre` follows the [`crate::booster::BootRequest::prepared`]
/// contract: pass pre-built [`PreParser`] measurements when sweeping,
/// `None` otherwise.
pub fn run_with_fallback(
    scenario: &Scenario,
    cfg: &BbConfig,
    pre: Option<&PreParser>,
    faults: &FaultPlan,
    policy: &FallbackPolicy,
) -> Result<BootOutcome, Error> {
    let pipeline = Pipeline::standard();
    let (ir, deltas) = pipeline.plan(scenario, cfg, pre)?;
    let (bb, _) = execute_with_faults(&ir, deltas, faults);

    let limit_hit = bb
        .boot
        .services
        .iter()
        .find(|(_, r)| r.start_limit_hit)
        .map(|(n, _)| n.as_str().to_string());
    let reason = if let Some(unit) = limit_hit {
        Some(FallbackReason::StartLimitHit { unit })
    } else {
        match bb.try_boot_time() {
            None => Some(FallbackReason::Incomplete),
            Some(t) if t.since(SimTime::ZERO) > policy.deadline => {
                Some(FallbackReason::DeadlineExceeded { completed_at: t })
            }
            Some(_) => None,
        }
    };
    let Some(reason) = reason else {
        return Ok(BootOutcome::Completed(Box::new(bb)));
    };

    // The supervisor notices a completed-but-bad boot immediately and a
    // wedged one only when the deadline expires.
    let detected_after = match bb.try_boot_time() {
        Some(t) => t.since(SimTime::ZERO).min(policy.deadline),
        None => policy.deadline,
    };
    let (conv_ir, conv_deltas) = pipeline.plan(scenario, &BbConfig::conventional(), pre)?;
    let (conventional, _) = execute_with_faults(&conv_ir, conv_deltas, &FaultPlan::none());
    let total_boot = conventional.boot_time() + detected_after;
    Ok(BootOutcome::Degraded(Box::new(DegradedBoot {
        bb,
        conventional,
        reason,
        total_boot,
    })))
}

/// Overlays supervision settings on every service unit of a scenario:
/// the chaos sweep's way of arming `Restart=` without hand-editing unit
/// sets. Units without an `ExecStart=` (targets, synthetic anchors) are
/// left alone.
pub fn with_supervision(
    scenario: &Scenario,
    restart: bb_init::RestartPolicy,
    restart_sec_ms: u64,
    start_limit_burst: u32,
) -> Scenario {
    let mut s = scenario.clone();
    for u in &mut s.units {
        if u.exec.exec_start.is_some() {
            u.exec.restart = restart;
            u.exec.restart_sec_ms = restart_sec_ms;
            u.exec.start_limit_burst = start_limit_burst;
        }
    }
    s
}

/// The fault targets a scenario exposes: every unit that actually runs
/// a process, plus the boot storage device.
pub fn fault_targets(scenario: &Scenario) -> FaultTargets {
    FaultTargets {
        processes: scenario
            .units
            .iter()
            .filter(|u| u.exec.exec_start.is_some())
            .map(|u| u.name.as_str().to_string())
            .collect(),
        devices: vec!["boot-storage".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::tests::mini_tv;
    use bb_init::RestartPolicy;
    use bb_sim::Fault;

    fn crash(process: &str, hits: u32) -> FaultPlan {
        FaultPlan {
            faults: vec![Fault::CrashAtReadiness {
                process: process.into(),
                hits,
            }],
            seed: 0,
        }
    }

    #[test]
    fn fault_free_boot_is_not_degraded() {
        let s = mini_tv();
        let out = run_with_fallback(
            &s,
            &BbConfig::full(),
            None,
            &FaultPlan::none(),
            &FallbackPolicy::default(),
        )
        .unwrap();
        assert!(!out.is_degraded());
        assert_eq!(out.restarts(), 0);
    }

    #[test]
    fn supervised_crash_recovers_without_fallback() {
        // dbus (a BB-group member) crashes once; Restart= respawns it
        // and the boost still completes on the fast path.
        let s = with_supervision(&mini_tv(), RestartPolicy::OnFailure, 50, 3);
        let out = run_with_fallback(
            &s,
            &BbConfig::full(),
            None,
            &crash("dbus.service", 1),
            &FallbackPolicy::default(),
        )
        .unwrap();
        match out {
            BootOutcome::Completed(r) => {
                assert_eq!(r.boot.service("dbus.service").restarts, 1);
                assert_eq!(
                    r.boot.service("dbus.service").outcome(),
                    bb_init::UnitOutcome::Restarted(1)
                );
            }
            BootOutcome::Degraded(d) => panic!("unexpected fallback: {}", d.reason),
        }
    }

    #[test]
    fn persistent_bb_group_crash_falls_back_to_conventional() {
        // The demo of the tentpole: a BB-group service that crashes on
        // every attempt bricks the fast path; the supervisor reboots
        // into the conventional shape and the TV still comes up.
        let s = with_supervision(&mini_tv(), RestartPolicy::OnFailure, 50, 2);
        let out = run_with_fallback(
            &s,
            &BbConfig::full(),
            None,
            &crash("dbus.service", 10),
            &FallbackPolicy::default(),
        )
        .unwrap();
        let BootOutcome::Degraded(d) = out else {
            panic!("persistent crash should degrade the boot");
        };
        assert_eq!(
            d.reason,
            FallbackReason::StartLimitHit {
                unit: "dbus.service".into()
            }
        );
        // Both timelines are present: the abandoned attempt shows the
        // exhausted unit, the fallback completed cleanly.
        assert!(d.bb.boot.service("dbus.service").start_limit_hit);
        assert!(d.bb.boot.completion_time.is_none());
        assert!(d.conventional.boot.completion_time.is_some());
        assert!(d.total_boot > d.conventional.boot_time());
    }

    #[test]
    fn unsupervised_crash_on_completion_path_degrades_at_deadline() {
        let s = mini_tv(); // Restart=no everywhere
        let policy = FallbackPolicy {
            deadline: SimDuration::from_millis(12_000),
        };
        let out = run_with_fallback(
            &s,
            &BbConfig::full(),
            None,
            &crash("tuner.service", 1),
            &policy,
        )
        .unwrap();
        let BootOutcome::Degraded(d) = out else {
            panic!("crashed completion dependency should degrade");
        };
        assert_eq!(d.reason, FallbackReason::Incomplete);
        // Wedged boots are only detected at the deadline.
        assert_eq!(
            d.total_boot,
            d.conventional.boot_time() + policy.deadline,
            "detection should cost the full deadline"
        );
    }

    #[test]
    fn fault_targets_cover_running_units_and_storage() {
        let t = fault_targets(&mini_tv());
        assert!(t.processes.contains(&"dbus.service".to_string()));
        assert!(!t.processes.contains(&"tv-boot.target".to_string()));
        assert_eq!(t.devices, ["boot-storage"]);
    }
}
