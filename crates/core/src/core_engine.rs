//! Core Engine: kernel-space BB components (§3.1).
//!
//! * *On-demand Modularizer* — partitions kernel components so
//!   non-boot-critical built-ins initialize after boot completion, and
//!   replaces the conventional external-`.ko` loading of the service
//!   phase with deferred built-in initialization. Plan-level knobs
//!   (defer flags, the [`ModuleStrategy`]) are flipped by the
//!   [`crate::pipeline`] passes; this module provides the machine-side
//!   installation.
//! * *RCU Booster* installation is a machine-level mode switch; its
//!   user-space control half lives in
//!   [`crate::bootup_engine::install_rcu_booster_control`].

use bb_kernel::ModuleCatalog;
use bb_sim::{DeviceId, FlagId, Machine, Op, ProcessSpec};

/// How many parallel loader workers handle kernel modules in the
/// conventional path (udev forks several workers).
pub const MODULE_LOADER_WORKERS: usize = 4;

/// How the service phase handles kernel modules — the plan-level knob
/// the [`crate::pipeline::OnDemandModularizer`] pass flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleStrategy {
    /// Conventional: every module loads as an external `.ko` during
    /// boot, spread over udev-style loader workers.
    ExternalKo {
        /// Number of parallel loader workers.
        workers: usize,
    },
    /// On-demand Modularizer: deferrable components become built-in
    /// initializations gated on boot completion; only boot-critical
    /// modules initialize eagerly (built-in, no `.ko` overhead).
    DeferredBuiltin,
}

/// Installs kernel-module handling for the service phase according to
/// `strategy` (see [`ModuleStrategy`]). Both paths compete with
/// services for CPU — and, conventionally, for storage too.
///
/// Returns the number of processes spawned.
pub fn install_module_loading(
    machine: &mut Machine,
    catalog: &ModuleCatalog,
    device: DeviceId,
    strategy: ModuleStrategy,
    boot_complete: FlagId,
) -> usize {
    if catalog.is_empty() {
        return 0;
    }
    let mut spawned = 0;
    if strategy == ModuleStrategy::DeferredBuiltin {
        // Boot-critical components initialize eagerly as built-ins (one
        // worker; the set is small), deferrable ones after completion.
        let eager: Vec<Op> = catalog
            .boot_critical()
            .flat_map(|m| catalog.deferred_builtin_ops(m))
            .collect();
        if !eager.is_empty() {
            machine.spawn(ProcessSpec::new("kworker/builtin-init", eager).with_nice(-5));
            spawned += 1;
        }
        let deferred: Vec<Op> = std::iter::once(Op::WaitFlag(boot_complete))
            .chain(
                catalog
                    .deferrable()
                    .flat_map(|m| catalog.deferred_builtin_ops(m)),
            )
            .collect();
        machine.spawn(ProcessSpec::new("kworker/ondemand-modularizer", deferred).with_nice(10));
        spawned += 1;
    } else {
        // Conventional: everything loads as external `.ko` during boot,
        // spread over a few udev-style workers.
        let workers = match strategy {
            ModuleStrategy::ExternalKo { workers } => workers.max(1),
            ModuleStrategy::DeferredBuiltin => unreachable!(),
        };
        let mut worker_ops: Vec<Vec<Op>> = vec![Vec::new(); workers];
        for (i, m) in catalog.modules.iter().enumerate() {
            worker_ops[i % workers].extend(catalog.external_load_ops(m, device));
        }
        for (i, ops) in worker_ops.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            machine.spawn(ProcessSpec::new(format!("udev-worker/{i}"), ops).with_nice(0));
            spawned += 1;
        }
    }
    spawned
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_kernel::synthetic_catalog;
    use bb_sim::{DeviceProfile, MachineConfig, SimTime};

    fn machine() -> (Machine, DeviceId, FlagId) {
        let mut m = Machine::new(MachineConfig::default());
        let dev = m.add_device("emmc", DeviceProfile::tv_emmc());
        let gate = m.flag("boot-complete");
        (m, dev, gate)
    }

    fn external() -> ModuleStrategy {
        ModuleStrategy::ExternalKo {
            workers: MODULE_LOADER_WORKERS,
        }
    }

    #[test]
    fn conventional_module_loading_happens_at_boot() {
        let (mut m, dev, gate) = machine();
        let cat = synthetic_catalog(40);
        let n = install_module_loading(&mut m, &cat, dev, external(), gate);
        assert_eq!(n, MODULE_LOADER_WORKERS);
        let out = m.run();
        // All loads done without the gate ever being set.
        assert!(out.blocked.is_empty());
        assert!(m.device(dev).bytes_read > 0);
        assert!(out.end_time > SimTime::ZERO);
    }

    #[test]
    fn modularizer_defers_most_work_past_completion() {
        let (mut m, dev, gate) = machine();
        let cat = synthetic_catalog(40);
        let n = install_module_loading(&mut m, &cat, dev, ModuleStrategy::DeferredBuiltin, gate);
        assert_eq!(n, 2);
        let before_gate = m.run();
        // Only the eager built-in worker ran; the deferred one blocks.
        assert_eq!(before_gate.blocked.len(), 1);
        // No flash I/O at all: built-ins read nothing.
        assert_eq!(m.device(dev).bytes_read, 0);
        m.set_flag_external(gate);
        let after = m.run();
        assert!(after.blocked.is_empty());
    }

    #[test]
    fn modularizer_pre_completion_work_is_much_smaller() {
        let cat = synthetic_catalog(408);
        let (mut m1, dev1, g1) = machine();
        install_module_loading(&mut m1, &cat, dev1, external(), g1);
        let conv = m1.run().end_time;
        let (mut m2, dev2, g2) = machine();
        install_module_loading(&mut m2, &cat, dev2, ModuleStrategy::DeferredBuiltin, g2);
        let bb = m2.run().end_time;
        assert!(
            bb.as_nanos() * 5 < conv.as_nanos(),
            "modularizer saved too little: {bb} vs {conv}"
        );
    }

    #[test]
    fn empty_catalog_spawns_nothing() {
        let (mut m, dev, gate) = machine();
        let n = install_module_loading(&mut m, &ModuleCatalog::default(), dev, external(), gate);
        assert_eq!(n, 0);
    }
}
