//! Boot telemetry: named spans, a metrics snapshot, and the
//! critical-path profiler.
//!
//! `bb-sim` records the raw material (trace events, machine-level
//! counters); this module assembles it into the structured views the
//! paper's methodology needs: per-kernel-phase / per-unit / per-pass
//! **spans**, a merged **metrics snapshot** (machine registry +
//! scheduler counters + supervision restarts), and the **critical
//! path** — the longest blocking chain from power-on to boot
//! completion, with per-edge slack. The critical path supersedes the
//! miner's ad-hoc slack table: [`ordering_edge_slacks`] is the one
//! shared slack computation, and [`crate::miner::mine`] consumes it.
//!
//! Everything here is read-only over an already-finished boot, so
//! profiling never perturbs the timeline; the only opt-in cost is the
//! machine-level metrics registry (see
//! [`bb_sim::machine::Machine::enable_telemetry`]).

use std::collections::{BTreeMap, BTreeSet};

use bb_init::{BootRecord, EdgeKind, UnitGraph, UnitName};
use bb_sim::{Machine, SimDuration, SimTime, Span};

use crate::booster::{FullBootReport, Scenario};
use crate::error::Error;

/// One ordering edge with its observed slack.
#[derive(Debug, Clone)]
pub struct EdgeSlack {
    /// Prerequisite unit.
    pub src: UnitName,
    /// Dependent unit.
    pub dst: UnitName,
    /// Graph indices (for re-running with the edge dropped).
    pub idx: (usize, usize),
    /// How long `src` had been ready when `dst` started. `None` when the
    /// edge was *binding* (src became ready at or after dst's start —
    /// i.e. the edge actually gated the dependent).
    pub slack: Option<SimDuration>,
}

/// Every in-transaction ordering edge of an observed boot, classified
/// by slack and sorted most-slack-first (the miner's candidate order).
pub fn ordering_edge_slacks(graph: &UnitGraph, boot: &BootRecord) -> Vec<EdgeSlack> {
    let mut edges: Vec<EdgeSlack> = Vec::new();
    let mut seen = BTreeSet::new();
    for e in graph.edges() {
        if e.kind != EdgeKind::Ordering || !seen.insert((e.src, e.dst)) {
            continue;
        }
        let src_name = &graph.unit(e.src).name;
        let dst_name = &graph.unit(e.dst).name;
        let (Some(src_rec), Some(dst_rec)) =
            (boot.services.get(src_name), boot.services.get(dst_name))
        else {
            continue;
        };
        let (Some(src_ready), Some(dst_started)) = (src_rec.ready, dst_rec.started) else {
            continue;
        };
        let slack = (src_ready < dst_started).then(|| dst_started.since(src_ready));
        edges.push(EdgeSlack {
            src: src_name.clone(),
            dst: dst_name.clone(),
            idx: (e.src, e.dst),
            slack,
        });
    }
    edges.sort_by(|a, b| b.slack.cmp(&a.slack).then_with(|| a.dst.cmp(&b.dst)));
    edges
}

/// Spans derivable from the report alone: `kernel/<phase>`,
/// `init/serial`, `init/load`, and `unit/<name>` (spawn to readiness).
///
/// Deterministic for a deterministic boot, and available without a
/// machine — the fleet aggregates exactly these across sweeps.
pub fn boot_spans(report: &FullBootReport) -> Vec<Span> {
    let mut spans = Vec::new();
    for p in &report.kernel.phases {
        spans.push(Span::new(
            format!("kernel/{}", p.name),
            p.start,
            p.start + p.duration,
        ));
    }
    spans.push(Span::new(
        "init/serial",
        report.boot.userspace_start,
        report.boot.init_done,
    ));
    spans.push(Span::new(
        "init/load",
        report.boot.init_done,
        report.boot.load_done,
    ));
    for (name, rec) in &report.boot.services {
        if let (Some(spawned), Some(ready)) = (rec.spawned, rec.ready) {
            spans.push(Span::new(format!("unit/{name}"), spawned, ready));
        }
    }
    spans
}

/// True if `process` carries out work a pass deferred past completion.
fn pass_claims_process(pass: &str, process: &str) -> bool {
    match pass {
        "defer-memory-init" => process == "kworker/mem-deferred-init",
        "ondemand-modularizer" => {
            process.starts_with("kworker/defer-init:") || process == "kworker/ondemand-modularizer"
        }
        "deferred-executor" => process.starts_with("systemd:") || process == "remount-rw-journal",
        "rcu-booster" => process == "rcu-booster-control",
        // Plan-only passes (pre-parser, isolator, priorities) leave no
        // deferred process behind.
        _ => false,
    }
}

/// Per-pass spans: for each recorded [`crate::pipeline::PassDelta`],
/// the interval its deferred background work occupied (first dispatch
/// of the earliest worker to finish of the latest). Passes with no
/// deferred processes — or whose work never ran — produce no span.
///
/// Needs the machine because the workers (`kworker/…`, `systemd:…`) are
/// not units; their lifecycle only exists in the trace.
pub fn pass_spans(report: &FullBootReport, machine: &Machine) -> Vec<Span> {
    let completion = report.boot.completion_time;
    let timeline = machine.trace().process_timeline();
    let mut spans = Vec::new();
    for delta in &report.deltas {
        let mut start: Option<SimTime> = None;
        let mut end: Option<SimTime> = None;
        for tl in timeline.values() {
            if !pass_claims_process(delta.pass, &tl.name) {
                continue;
            }
            // The deferred-executor predicate also matches the *eager*
            // service-phase housekeeping of a conventional boot; only
            // work running past completion was actually deferred.
            if delta.pass == "deferred-executor" {
                match (tl.finished, completion) {
                    (Some(f), Some(c)) if f > c => {}
                    _ => continue,
                }
            }
            let Some(began) = tl.first_run.or(tl.spawned) else {
                continue;
            };
            let Some(done) = tl.finished else { continue };
            start = Some(start.map_or(began, |s: SimTime| if began < s { began } else { s }));
            end = Some(end.map_or(done, |e: SimTime| e.max(done)));
        }
        if let (Some(s), Some(e)) = (start, end) {
            spans.push(Span::new(format!("pass/{}", delta.pass), s, e));
        }
    }
    spans
}

/// A merged view of every numeric measurement of one boot: the
/// machine's opt-in registry (RCU waits, run-queue depth, I/O latency)
/// plus counters the stack always maintains (scheduler stats, RCU
/// engine stats, supervision restarts).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, keyed by dotted metric name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries, keyed by dotted metric name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Summary statistics of one histogram (nearest-rank percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Truncated arithmetic mean.
    pub mean: u64,
    /// 50th percentile.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    fn of(h: &bb_sim::Histogram) -> Option<HistogramSummary> {
        Some(HistogramSummary {
            count: h.count() as u64,
            min: h.min()?,
            max: h.max()?,
            mean: h.mean()?,
            p50: h.percentile(50)?,
            p95: h.percentile(95)?,
            p99: h.percentile(99)?,
        })
    }
}

/// Snapshots every metric of a finished boot. Histograms are present
/// only when the machine booted with telemetry enabled.
pub fn metrics_snapshot(report: &FullBootReport, machine: &Machine) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    if let Some(t) = machine.telemetry() {
        for (name, value) in t.metrics.counters() {
            snap.counters.insert(name.to_string(), value);
        }
        for (name, h) in t.metrics.histograms() {
            if let Some(summary) = HistogramSummary::of(h) {
                snap.histograms.insert(name.to_string(), summary);
            }
        }
    }
    let sched = machine.sched_stats();
    let queue = machine.event_queue_stats();
    snap.counters
        .insert("sim.events.scheduled".into(), queue.scheduled);
    snap.counters
        .insert("sim.events.peak_depth".into(), queue.peak_depth as u64);
    snap.counters
        .insert("sched.dispatches".into(), sched.dispatches);
    snap.counters
        .insert("sched.preemptions".into(), sched.preemptions);
    snap.counters
        .insert("sched.flag_wakeups".into(), sched.flag_wakeups);
    snap.counters
        .insert("io.requests".into(), sched.io_requests);
    snap.counters
        .insert("rcu.grace_periods".into(), report.rcu.grace_periods);
    snap.counters
        .insert("rcu.syncs_completed".into(), report.rcu.syncs_completed);
    let restarts: u64 = report
        .boot
        .services
        .values()
        .map(|r| r.restarts as u64)
        .sum();
    snap.counters.insert("init.unit.restarts".into(), restarts);
    snap
}

/// One step of the critical path.
#[derive(Debug, Clone)]
pub struct CriticalStep {
    /// Span name (`kernel/…`, `init/…`, `unit/…`).
    pub name: String,
    /// When this step began holding up the boot.
    pub start: SimTime,
    /// When it released the next step (phase end / unit readiness).
    pub end: SimTime,
    /// Slack against the previous step: how long the predecessor had
    /// been done when this step's process actually started. `None` for
    /// binding hand-offs (the predecessor directly gated this step).
    pub slack: Option<SimDuration>,
}

impl CriticalStep {
    /// The step's share of the boot time.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The longest blocking chain from power-on to boot completion.
///
/// The steps tile `[0, boot_time]` exactly — kernel phases, the serial
/// init phase, unit loading, then the chain of units whose readiness
/// gated completion — so [`CriticalPath::total`] always equals the
/// reported boot time.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Chain steps, in boot order.
    pub steps: Vec<CriticalStep>,
    /// Sum of step durations; equals the boot time by construction.
    pub total: SimDuration,
}

impl CriticalPath {
    /// Text table (for `bbsim boot --profile`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "critical path: {} steps, {:.3} ms total",
            self.steps.len(),
            self.total.as_nanos() as f64 / 1e6
        );
        let _ = writeln!(
            s,
            "  {:<42} {:>12} {:>12} {:>10} {:>10}",
            "span", "start ms", "end ms", "dur ms", "slack ms"
        );
        for step in &self.steps {
            let slack = match step.slack {
                None => "-".to_string(),
                Some(d) => format!("{:.3}", d.as_nanos() as f64 / 1e6),
            };
            let _ = writeln!(
                s,
                "  {:<42} {:>12.3} {:>12.3} {:>10.3} {:>10}",
                step.name,
                step.start.as_nanos() as f64 / 1e6,
                step.end.as_nanos() as f64 / 1e6,
                step.duration().as_nanos() as f64 / 1e6,
                slack,
            );
        }
        s
    }
}

/// Walks the span DAG of a finished boot and extracts the critical
/// path. Returns `None` when the boot never completed (there is no
/// path to walk to).
pub fn critical_path(graph: &UnitGraph, report: &FullBootReport) -> Option<CriticalPath> {
    let boot_time = report.try_boot_time()?;
    let boot = &report.boot;
    let mut steps = Vec::new();

    // Serial prefix: kernel phases tile [0, userspace_start] …
    for p in &report.kernel.phases {
        steps.push(CriticalStep {
            name: format!("kernel/{}", p.name),
            start: p.start,
            end: p.start + p.duration,
            slack: None,
        });
    }
    // … then the manager's serial init phase and unit loading.
    steps.push(CriticalStep {
        name: "init/serial".into(),
        start: boot.userspace_start,
        end: boot.init_done,
        slack: None,
    });
    steps.push(CriticalStep {
        name: "init/load".into(),
        start: boot.init_done,
        end: boot.load_done,
        slack: None,
    });

    // Chain end: the completion unit whose readiness set boot-complete.
    let (end_name, _) = boot
        .services
        .iter()
        .filter(|(_, r)| r.ready == Some(boot_time))
        .min_by_key(|(n, _)| (*n).clone())?;

    // Walk binding predecessors backwards: from each unit, follow the
    // ordering in-edge whose source's readiness was the latest gate the
    // unit observed before starting.
    let mut chain: Vec<UnitName> = vec![end_name.clone()];
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut cur = graph.idx_of(end_name.as_str());
    visited.insert(cur);
    loop {
        let cur_rec = &boot.services[&graph.unit(cur).name];
        let (Some(cur_started), Some(cur_spawned)) = (cur_rec.started, cur_rec.spawned) else {
            break;
        };
        let mut best: Option<(SimTime, usize)> = None;
        let mut seen_src = BTreeSet::new();
        for e in graph.ordering_in_edges(cur) {
            if e.src == cur || !seen_src.insert(e.src) || visited.contains(&e.src) {
                continue;
            }
            let Some(src_rec) = boot.services.get(&graph.unit(e.src).name) else {
                continue;
            };
            let Some(src_ready) = src_rec.ready else {
                continue;
            };
            // Edges the run did not enforce (stripped by isolation, or
            // satisfied long before) cannot have gated the start.
            if src_ready > cur_started {
                continue;
            }
            let better = match best {
                None => true,
                Some((t, i)) => src_ready > t || (src_ready == t && e.src < i),
            };
            if better {
                best = Some((src_ready, e.src));
            }
        }
        let Some((pred_ready, pred)) = best else {
            break;
        };
        // If the predecessor was ready before this unit even existed,
        // the wait was manager dispatch, not the dependency: stop here.
        if pred_ready < cur_spawned {
            break;
        }
        chain.push(graph.unit(pred).name.clone());
        visited.insert(pred);
        cur = pred;
    }
    chain.reverse();

    // Tile (load_done, boot_time] with the chain's readiness boundaries.
    let mut boundary = boot.load_done;
    let mut prev_ready: Option<SimTime> = None;
    for name in &chain {
        let rec = &boot.services[name];
        let ready = rec.ready.expect("chain units are ready");
        let slack = match (prev_ready, rec.started) {
            (Some(pr), Some(started)) if started > pr => Some(started.since(pr)),
            (Some(_), _) => None,
            (None, _) => None,
        };
        steps.push(CriticalStep {
            name: format!("unit/{name}"),
            start: boundary,
            end: ready.max(boundary),
            slack,
        });
        boundary = ready.max(boundary);
        prev_ready = Some(ready);
    }

    let total: SimDuration = steps.iter().map(CriticalStep::duration).sum();
    debug_assert_eq!(
        total,
        boot_time.since(SimTime::ZERO),
        "critical path must tile the boot exactly"
    );
    Some(CriticalPath { steps, total })
}

/// The full profile of one boot: every span plus the critical path.
#[derive(Debug)]
pub struct BootProfile {
    /// All spans: report-derived always, pass spans when a machine was
    /// supplied.
    pub spans: Vec<Span>,
    /// The critical path; `None` for boots that never completed.
    pub critical_path: Option<CriticalPath>,
}

/// Profiles a finished boot of `scenario`. Pass the machine to include
/// per-pass spans (deferred background work intervals).
pub fn profile(
    scenario: &Scenario,
    report: &FullBootReport,
    machine: Option<&Machine>,
) -> Result<BootProfile, Error> {
    let graph = UnitGraph::build(scenario.units.clone())?;
    let mut spans = boot_spans(report);
    if let Some(m) = machine {
        spans.extend(pass_spans(report, m));
    }
    Ok(BootProfile {
        spans,
        critical_path: critical_path(&graph, report),
    })
}

/// Names re-exported from the machine-level registry, so callers need
/// one import path for metric names.
pub mod metric_names {
    pub use bb_sim::telemetry::{
        IO_REQUEST_LATENCY_NS, RCU_SYNCS, RCU_SYNC_WAIT_NS, RUN_QUEUE_DEPTH,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::tests::mini_tv;
    use crate::booster::BootRequest;
    use crate::config::BbConfig;

    fn booted(cfg: BbConfig, telemetry: bool) -> (Scenario, crate::booster::Boot) {
        let s = mini_tv();
        let boot = BootRequest::new(&s)
            .config(cfg)
            .telemetry(telemetry)
            .run()
            .expect("valid scenario");
        (s, boot)
    }

    #[test]
    fn boot_spans_cover_kernel_init_and_units() {
        let (_, boot) = booted(BbConfig::full(), false);
        let spans = boot_spans(&boot.report);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"kernel/bootloader"));
        assert!(names.contains(&"kernel/rootfs-mount"));
        assert!(names.contains(&"init/serial"));
        assert!(names.contains(&"init/load"));
        assert!(names.contains(&"unit/fasttv.service"));
        for s in &spans {
            assert!(s.end >= s.start, "span {} runs backwards", s.name);
        }
    }

    #[test]
    fn pass_spans_exist_for_deferring_passes_only() {
        let (_, boot) = booted(BbConfig::full(), false);
        let spans = pass_spans(&boot.report, &boot.machine);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"pass/defer-memory-init"));
        assert!(names.contains(&"pass/ondemand-modularizer"));
        assert!(names.contains(&"pass/deferred-executor"));
        assert!(!names.contains(&"pass/pre-parser"));
        // Deferred work runs up to (rcu-booster reverts exactly at) or
        // past completion.
        let completion = boot.report.boot.completion_time.unwrap();
        for s in &spans {
            assert!(
                s.end >= completion,
                "pass span {} ended before completion",
                s.name
            );
        }
    }

    #[test]
    fn conventional_boot_has_no_pass_spans() {
        let (_, boot) = booted(BbConfig::conventional(), false);
        assert!(pass_spans(&boot.report, &boot.machine).is_empty());
    }

    #[test]
    fn critical_path_total_equals_boot_time() {
        for cfg in [BbConfig::conventional(), BbConfig::full()] {
            let (s, boot) = booted(cfg, false);
            let graph = UnitGraph::build(s.units.clone()).unwrap();
            let cp = critical_path(&graph, &boot.report).expect("completed boot");
            assert_eq!(
                cp.total,
                boot.report.boot_time().since(SimTime::ZERO),
                "critical path must sum to the boot time"
            );
            // The chain ends at a completion unit.
            assert_eq!(cp.steps.last().unwrap().name, "unit/fasttv.service");
            // Steps tile: each starts where the previous ended.
            for pair in cp.steps.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap in the critical path");
            }
            assert!(cp.render().contains("critical path:"));
        }
    }

    #[test]
    fn critical_path_follows_the_backbone_chain() {
        let (s, boot) = booted(BbConfig::full(), false);
        let graph = UnitGraph::build(s.units.clone()).unwrap();
        let cp = critical_path(&graph, &boot.report).unwrap();
        let units: Vec<&str> = cp
            .steps
            .iter()
            .filter(|st| st.name.starts_with("unit/"))
            .map(|st| st.name.as_str())
            .collect();
        assert_eq!(
            units,
            [
                "unit/var.mount",
                "unit/dbus.service",
                "unit/tuner.service",
                "unit/fasttv.service"
            ],
            "BB group backbone should be the critical chain"
        );
    }

    #[test]
    fn metrics_snapshot_merges_registry_and_stats() {
        let (_, boot) = booted(BbConfig::full(), true);
        let snap = metrics_snapshot(&boot.report, &boot.machine);
        assert!(snap.counters["sched.dispatches"] > 0);
        assert_eq!(snap.counters["init.unit.restarts"], 0);
        assert_eq!(
            snap.counters[metric_names::RCU_SYNCS],
            boot.report.rcu.syncs_completed
        );
        let rcu_wait = &snap.histograms[metric_names::RCU_SYNC_WAIT_NS];
        assert_eq!(rcu_wait.count, boot.report.rcu.syncs_completed);
        assert!(rcu_wait.p50 <= rcu_wait.p95 && rcu_wait.p95 <= rcu_wait.p99);
    }

    #[test]
    fn snapshot_without_telemetry_has_no_histograms() {
        let (_, boot) = booted(BbConfig::full(), false);
        let snap = metrics_snapshot(&boot.report, &boot.machine);
        assert!(snap.histograms.is_empty());
        assert!(snap.counters.contains_key("sched.dispatches"));
    }

    #[test]
    fn edge_slacks_match_miner_semantics() {
        let (s, boot) = booted(BbConfig::conventional(), false);
        let graph = UnitGraph::build(s.units.clone()).unwrap();
        let edges = ordering_edge_slacks(&graph, &boot.report.boot);
        assert!(!edges.is_empty());
        // Sorted most-slack-first, binding (None) last.
        for pair in edges.windows(2) {
            assert!(pair[0].slack >= pair[1].slack);
        }
        // The backbone contains at least one binding edge.
        assert!(edges.iter().any(|e| e.slack.is_none()));
    }

    #[test]
    fn profile_assembles_spans_and_path() {
        let s = mini_tv();
        let boot = BootRequest::new(&s).config(BbConfig::full()).run().unwrap();
        let p = profile(&s, &boot.report, Some(&boot.machine)).unwrap();
        assert!(p.spans.iter().any(|sp| sp.name.starts_with("pass/")));
        assert!(p.critical_path.is_some());
        let no_machine = profile(&s, &boot.report, None).unwrap();
        assert!(!no_machine
            .spans
            .iter()
            .any(|sp| sp.name.starts_with("pass/")));
    }
}
