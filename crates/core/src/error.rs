//! The workspace error hierarchy: one type for every way a boot (or a
//! fleet of boots) can fail.
//!
//! Before this module each layer had its own failure enum — `BoostError`
//! for plan assembly, [`FallbackReason`] for the boot supervisor,
//! `FailureKind` for fleet jobs — and callers matched three types.
//! [`Error`] folds them into one hierarchy with [`std::error::Error`]
//! `source()` chains; the old names survive as deprecated aliases
//! (`bb_core::BoostError`) and re-exports (`bb_fleet::FailureKind`).

use std::time::Duration;

use bb_init::{GraphError, TransactionError};

use crate::fallback::FallbackReason;

/// Any failure from assembling, booting, supervising, or sweeping a
/// scenario.
#[derive(Debug)]
pub enum Error {
    /// The unit set is malformed.
    Graph(GraphError),
    /// The transaction could not be built.
    Transaction(TransactionError),
    /// A supervised boot abandoned the fast path (see
    /// [`crate::fallback::run_with_fallback`]).
    Fallback(FallbackReason),
    /// A fleet job failed (see `bb_fleet`).
    Job(JobError),
    /// A machine snapshot could not be written or restored (see
    /// [`bb_sim::snapshot`] and [`crate::booster::Checkpoint`]).
    Snapshot(bb_sim::SnapshotError),
    /// A checkpoint/resume request combined incompatible options (e.g.
    /// resuming under a config whose prefix differs from the
    /// checkpoint's, or checkpointing with telemetry enabled).
    Checkpoint(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Graph(e) => write!(f, "unit graph error: {e}"),
            Error::Transaction(e) => write!(f, "transaction error: {e}"),
            Error::Fallback(e) => write!(f, "fallback: {e}"),
            Error::Job(e) => write!(f, "job failed: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot error: {e}"),
            Error::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Transaction(e) => Some(e),
            Error::Fallback(e) => Some(e),
            Error::Job(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Checkpoint(_) => None,
        }
    }
}

impl From<GraphError> for Error {
    fn from(e: GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<TransactionError> for Error {
    fn from(e: TransactionError) -> Self {
        Error::Transaction(e)
    }
}

impl From<FallbackReason> for Error {
    fn from(e: FallbackReason) -> Self {
        Error::Fallback(e)
    }
}

impl From<JobError> for Error {
    fn from(e: JobError) -> Self {
        Error::Job(e)
    }
}

impl From<bb_sim::SnapshotError> for Error {
    fn from(e: bb_sim::SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

/// Why a fleet job produced no samples (re-exported by `bb_fleet` as
/// `FailureKind`).
#[derive(Debug, Clone)]
pub enum JobError {
    /// The job panicked; the payload message is attached.
    Panic(String),
    /// The scenario failed to assemble (graph/transaction error).
    Boost(String),
    /// A boot ran to machine quiescence without ever meeting the
    /// completion definition (a hung boot). Carries the config label
    /// that hung.
    Incomplete {
        /// Label of the config whose boot never completed.
        config: String,
    },
    /// The job finished but blew its wall-clock deadline.
    DeadlineExceeded {
        /// How long the job actually took.
        elapsed: Duration,
    },
    /// A chaos boot fell back to the conventional shape (the boot
    /// supervisor tripped). Reported as a notable event, not a lost
    /// sample: the degraded boot time still aggregates.
    Degraded {
        /// Label of the config whose boot degraded.
        config: String,
    },
    /// A chaos boot crashed but supervision respawned the unit(s) and
    /// the fast path still completed. Also a notable event.
    FaultRecovered {
        /// Label of the config that recovered.
        config: String,
        /// Supervised respawns the recovery took.
        restarts: u32,
    },
    /// A chaos boot's artifact (pre-parse blob or snapshot image) was
    /// rejected by the integrity chain and the boot recovered without
    /// it (see [`crate::recovery`]). A notable event, not a lost
    /// sample.
    ArtifactRejected {
        /// Label of the config whose artifact was rejected.
        config: String,
        /// The recovery's stable one-line description.
        detail: String,
    },
}

impl JobError {
    /// Stable one-line form for reports. Deliberately excludes
    /// wall-clock durations so failure output stays deterministic.
    pub fn reason(&self) -> String {
        match self {
            JobError::Panic(msg) => format!("panic: {msg}"),
            JobError::Boost(msg) => format!("boost: {msg}"),
            JobError::Incomplete { config } => format!("incomplete boot: {config}"),
            JobError::DeadlineExceeded { .. } => "deadline exceeded".to_owned(),
            JobError::Degraded { config } => format!("degraded boot: {config}"),
            JobError::FaultRecovered { config, restarts } => {
                format!("recovered after {restarts} restart(s): {config}")
            }
            JobError::ArtifactRejected { config, detail } => {
                format!("artifact rejected ({detail}): {config}")
            }
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason())
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_init::UnitName;
    use std::error::Error as _;

    #[test]
    fn display_is_layered_and_sources_chain() {
        let e = Error::Graph(GraphError::DuplicateUnit(UnitName::new("a.service")));
        assert_eq!(e.to_string(), "unit graph error: duplicate unit a.service");
        assert_eq!(
            e.source().expect("chained").to_string(),
            "duplicate unit a.service"
        );

        let e = Error::from(FallbackReason::Incomplete);
        assert_eq!(e.to_string(), "fallback: boot never completed");
        assert!(e.source().is_some());

        let e = Error::from(JobError::Incomplete {
            config: "bb".into(),
        });
        assert_eq!(e.to_string(), "job failed: incomplete boot: bb");
        assert_eq!(
            e.source().expect("chained").to_string(),
            "incomplete boot: bb"
        );
    }

    #[test]
    fn job_error_reasons_are_stable() {
        assert_eq!(JobError::Panic("boom".into()).reason(), "panic: boom");
        assert_eq!(
            JobError::DeadlineExceeded {
                elapsed: Duration::from_secs(9)
            }
            .reason(),
            "deadline exceeded"
        );
        assert_eq!(
            JobError::FaultRecovered {
                config: "bb".into(),
                restarts: 2
            }
            .reason(),
            "recovered after 2 restart(s): bb"
        );
    }
}
