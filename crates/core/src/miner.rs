//! Dependency miner: the automated dependency-verification mechanism
//! the paper calls for in §5.
//!
//! "If the size of BB Group grows (and surely will grow in a few
//! years), an automated mechanism will be required to verify dependency
//! declarations to remove or add dependencies" — and since developers
//! over-declare ("some developers tend to declare excessive dependencies
//! to feel safer"), the administrators "are virtually forced to ignore
//! what they have declared by experimenting with all possible launching
//! sequences".
//!
//! The miner automates exactly that experiment loop:
//!
//! 1. **Observe** an instrumented boot and classify every ordering edge
//!    by *slack* — how long the prerequisite had been ready before the
//!    dependent started. Edges with large slack never gated anything.
//! 2. **Verify** each removal candidate by re-running the boot with the
//!    edge ignored and checking that every service still becomes ready
//!    and boot completion is preserved.
//!
//! The result is a minimal-risk set of removable declarations plus the
//! boot-time improvement of removing them.

use std::collections::BTreeSet;

use bb_sim::{SimDuration, SimTime};

use crate::booster::{BootRequest, Scenario};
use crate::config::BbConfig;
use crate::error::Error;
use crate::telemetry::ordering_edge_slacks;
pub use crate::telemetry::EdgeSlack;

/// The mining result.
#[derive(Debug)]
pub struct MiningReport {
    /// Every in-transaction ordering edge, most slack first.
    pub edges: Vec<EdgeSlack>,
    /// Edges whose removal was verified safe (all services still ready,
    /// completion preserved).
    pub verified_removable: Vec<EdgeSlack>,
    /// Boot time of the observed baseline run.
    pub baseline_boot: SimTime,
    /// Boot time with every verified-removable edge dropped.
    pub pruned_boot: SimTime,
}

/// Minimum observed slack for an edge to become a removal candidate.
pub const SLACK_THRESHOLD: SimDuration = SimDuration::from_millis(50);

/// Mines the scenario's ordering declarations under `cfg`.
///
/// `max_candidates` bounds the verification re-runs (each is one full
/// boot simulation); candidates are taken in slack order.
pub fn mine(
    scenario: &Scenario,
    cfg: &BbConfig,
    max_candidates: usize,
) -> Result<MiningReport, Error> {
    // 1. Observe: the critical-path profiler's shared slack computation
    // classifies every ordering edge from one instrumented boot.
    let baseline = BootRequest::new(scenario).config(*cfg).run()?.report;
    let graph = bb_init::UnitGraph::build(scenario.units.clone()).map_err(Error::Graph)?;
    let edges = ordering_edge_slacks(&graph, &baseline.boot);

    // 2. Verify candidates one at a time (conservative: each edge is
    // tested against the otherwise-unmodified boot).
    let mut verified: Vec<EdgeSlack> = Vec::new();
    for cand in edges
        .iter()
        .filter(|e| e.slack.is_some_and(|s| s >= SLACK_THRESHOLD))
        .take(max_candidates)
    {
        let pair = cand.idx;
        let run = BootRequest::new(scenario)
            .config(*cfg)
            .tweak(move |_, _, overrides| {
                overrides.drop_edges.insert(pair);
            })
            .run()?
            .report;
        let safe = run.boot.completion_time.is_some()
            && run.boot.outcome.failed.is_empty()
            && run.boot.services.values().all(|r| r.ready.is_some());
        if safe {
            verified.push(cand.clone());
        }
    }

    // 3. Measure the pruned boot with all verified removals applied.
    let pairs: BTreeSet<(usize, usize)> = verified.iter().map(|e| e.idx).collect();
    let pruned = BootRequest::new(scenario)
        .config(*cfg)
        .tweak(|_, _, overrides| {
            overrides.drop_edges.extend(pairs.iter().copied());
        })
        .run()?
        .report;

    Ok(MiningReport {
        edges,
        verified_removable: verified,
        baseline_boot: baseline.boot_time(),
        pruned_boot: pruned.boot_time(),
    })
}

impl MiningReport {
    /// Edges that actually gated their dependents in the observed run.
    pub fn binding_edges(&self) -> impl Iterator<Item = &EdgeSlack> {
        self.edges.iter().filter(|e| e.slack.is_none())
    }

    /// Text rendering of the top removal candidates.
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "dependency miner: {} ordering edges observed, {} binding, {} verified removable",
            self.edges.len(),
            self.binding_edges().count(),
            self.verified_removable.len()
        );
        let _ = writeln!(
            s,
            "boot: baseline {} -> pruned {}",
            self.baseline_boot, self.pruned_boot
        );
        for e in self.verified_removable.iter().take(top) {
            let _ = writeln!(
                s,
                "  removable: {} -> {} (slack {})",
                e.src,
                e.dst,
                e.slack.expect("candidates have slack")
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::tests::mini_tv;

    #[test]
    fn miner_finds_the_varmount_abusers() {
        // In the mini TV scenario two services declare Before=var.mount
        // purely to launch early (§4.2); with conventional boot those
        // edges are binding-ish early but the reverse direction (their
        // own readiness gating var.mount) shows up as removable slack
        // elsewhere. At minimum: the miner runs, verifies candidates,
        // and never makes boot worse.
        let s = mini_tv();
        let report = mine(&s, &BbConfig::conventional(), 8).expect("mines");
        assert!(!report.edges.is_empty());
        // Every verified removal keeps the boot complete and not slower
        // than baseline beyond noise.
        assert!(
            report.pruned_boot.as_nanos() <= report.baseline_boot.as_nanos() + 10_000_000,
            "pruning made boot worse: {} vs {}",
            report.pruned_boot,
            report.baseline_boot
        );
        for e in &report.verified_removable {
            assert!(e.slack.expect("has slack") >= SLACK_THRESHOLD);
        }
    }

    #[test]
    fn binding_edges_are_reported() {
        // The backbone chain (var.mount -> dbus -> tuner -> fasttv) must
        // contain binding edges: those cannot be removal candidates.
        let s = mini_tv();
        let report = mine(&s, &BbConfig::conventional(), 4).expect("mines");
        let binding: Vec<String> = report
            .binding_edges()
            .map(|e| format!("{}->{}", e.src, e.dst))
            .collect();
        assert!(
            binding.iter().any(|e| e.contains("dbus.service")),
            "no binding edge around dbus: {binding:?}"
        );
        // Rendering works.
        assert!(report.render(5).contains("dependency miner"));
    }
}
