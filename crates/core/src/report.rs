//! Figure-6-style reporting: per-step comparison of a conventional and a
//! boosted boot, plus per-pass attribution from a single boot's
//! [`PassDelta`] provenance.

use bb_sim::{SimDuration, SimTime};

use crate::booster::FullBootReport;
use crate::pipeline::PassDelta;

/// One comparison row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Step name.
    pub step: String,
    /// Conventional duration.
    pub conventional: SimDuration,
    /// BB duration.
    pub boosted: SimDuration,
}

impl Row {
    /// Absolute saving (saturating).
    pub fn saving(&self) -> SimDuration {
        self.conventional.saturating_sub(self.boosted)
    }
}

/// The Figure 6 breakdown: kernel phases, init initialization, service
/// phase, and the end-to-end total.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-step rows.
    pub rows: Vec<Row>,
    /// Conventional end-to-end boot time.
    pub conventional_total: SimTime,
    /// BB end-to-end boot time.
    pub boosted_total: SimTime,
}

impl Comparison {
    /// Builds the comparison from two runs of the same scenario.
    pub fn build(conv: &FullBootReport, bb: &FullBootReport) -> Comparison {
        let mut rows = Vec::new();
        let phase =
            |r: &FullBootReport, name: &str| r.kernel.phase(name).unwrap_or(SimDuration::ZERO);
        for name in [
            "bootloader",
            "memory-init",
            "initcalls",
            "kernel-misc",
            "rootfs-mount",
        ] {
            rows.push(Row {
                step: format!("kernel: {name}"),
                conventional: phase(conv, name),
                boosted: phase(bb, name),
            });
        }
        rows.push(Row {
            step: "init: initialization".into(),
            conventional: conv.boot.init_done.since(conv.boot.userspace_start),
            boosted: bb.boot.init_done.since(bb.boot.userspace_start),
        });
        rows.push(Row {
            step: "init: load+parse units".into(),
            conventional: conv.boot.load_done.since(conv.boot.init_done),
            boosted: bb.boot.load_done.since(bb.boot.init_done),
        });
        rows.push(Row {
            step: "services & applications".into(),
            conventional: conv.boot.boot_time().since(conv.boot.load_done),
            boosted: bb.boot.boot_time().since(bb.boot.load_done),
        });
        Comparison {
            rows,
            conventional_total: conv.boot_time(),
            boosted_total: bb.boot_time(),
        }
    }

    /// Total saving.
    pub fn total_saving(&self) -> SimDuration {
        SimTime::saturating_since(self.conventional_total, self.boosted_total)
    }

    /// Percentage reduction in boot time.
    pub fn reduction_percent(&self) -> f64 {
        let conv = self.conventional_total.as_nanos() as f64;
        if conv == 0.0 {
            return 0.0;
        }
        100.0 * self.total_saving().as_nanos() as f64 / conv
    }

    /// Renders the comparison as an aligned text table.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<28} {:>14} {:>14} {:>12}",
            "step", "conventional", "bb", "saving"
        );
        let _ = writeln!(s, "{}", "-".repeat(72));
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{:<28} {:>14} {:>14} {:>12}",
                row.step,
                row.conventional.to_string(),
                row.boosted.to_string(),
                row.saving().to_string()
            );
        }
        let _ = writeln!(s, "{}", "-".repeat(72));
        let _ = writeln!(
            s,
            "{:<28} {:>14} {:>14} {:>12}  (-{:.1}%)",
            "TOTAL (power-on to ready)",
            format!("{}", self.conventional_total),
            format!("{}", self.boosted_total),
            self.total_saving().to_string(),
            self.reduction_percent()
        );
        s
    }
}

/// Renders per-pass attribution from one boot's [`PassDelta`] records
/// as an aligned text table — the single-boot replacement for deriving
/// Figure 6's per-feature savings from whole ablation sweeps.
pub fn attribution_table(deltas: &[PassDelta]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{:<22} {:>14}  what moved", "pass", "est. saving");
    let _ = writeln!(s, "{}", "-".repeat(72));
    let mut total = SimDuration::ZERO;
    for d in deltas {
        total += d.estimated_saving;
        let _ = writeln!(
            s,
            "{:<22} {:>14}  {}",
            d.pass,
            d.estimated_saving.to_string(),
            d.summary()
        );
    }
    let _ = writeln!(s, "{}", "-".repeat(72));
    let _ = writeln!(s, "{:<22} {:>14}", "TOTAL (estimated)", total.to_string());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::{tests::mini_tv, BootRequest};
    use crate::config::BbConfig;

    #[test]
    fn comparison_rows_cover_all_steps() {
        let s = mini_tv();
        let conv = BootRequest::new(&s)
            .config(BbConfig::conventional())
            .run()
            .unwrap()
            .report;
        let bb = BootRequest::new(&s)
            .config(BbConfig::full())
            .run()
            .unwrap()
            .report;
        let cmp = Comparison::build(&conv, &bb);
        assert_eq!(cmp.rows.len(), 8);
        assert!(cmp.total_saving() > SimDuration::ZERO);
        assert!(cmp.reduction_percent() > 0.0);
        let table = cmp.to_table();
        assert!(table.contains("memory-init"));
        assert!(table.contains("services & applications"));
        assert!(table.contains("TOTAL"));
    }

    #[test]
    fn attribution_table_renders_every_pass() {
        let s = mini_tv();
        let bb = BootRequest::new(&s)
            .config(BbConfig::full())
            .run()
            .unwrap()
            .report;
        let table = attribution_table(&bb.deltas);
        for pass in crate::pipeline::STANDARD_PASSES {
            assert!(table.contains(pass), "missing {pass} in:\n{table}");
        }
        assert!(table.contains("TOTAL (estimated)"));
    }

    #[test]
    fn step_savings_sum_close_to_total() {
        let s = mini_tv();
        let conv = BootRequest::new(&s)
            .config(BbConfig::conventional())
            .run()
            .unwrap()
            .report;
        let bb = BootRequest::new(&s)
            .config(BbConfig::full())
            .run()
            .unwrap()
            .report;
        let cmp = Comparison::build(&conv, &bb);
        let step_sum: u64 = cmp.rows.iter().map(|r| r.saving().as_nanos()).sum();
        let total = cmp.total_saving().as_nanos();
        // Steps partition the timeline, so savings should add up (small
        // slack for rows where BB is *slower* and saving saturates to 0).
        assert!(step_sum >= total, "steps {step_sum} < total {total}");
    }
}
