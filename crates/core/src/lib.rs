//! # bb-core — the Booting Booster
//!
//! Reproduction of the paper's contribution: the three BB engines that
//! cut a Samsung Tizen TV's cold boot from 8.1 s to 3.5 s (EuroSys 2016).
//!
//! * [`core_engine`] — kernel space: On-demand Modularizer, deferred
//!   memory initialization, RCU Booster installation.
//! * [`bootup_engine`] — init-scheme initialization: the Deferred
//!   Executor's task tables and RCU Booster Control.
//! * [`service_engine`] — BB Group Isolator, Booting Booster Manager
//!   (priorities + dispatch order), Pre-parser, Service Analyzer.
//! * [`pipeline`] — the spine: every mechanism as a [`pipeline::PlanPass`]
//!   over one [`pipeline::BootPlanIr`], with a [`pipeline::PassDelta`]
//!   provenance record per pass.
//! * [`plan_cache`] — sweep-wide sharing of compiled plans: a
//!   [`plan_cache::PlanCache`] hands the same `Arc`'d plan to every
//!   run/checkpoint/resume of a (scenario, config) pair.
//! * [`booster`] — the single-entry facade: boot a
//!   [`booster::Scenario`] through a [`booster::BootRequest`] and get a
//!   [`booster::Boot`] (report + machine).
//! * [`fallback`] — the boot supervisor: run the BB shape under an
//!   injected [`bb_sim::FaultPlan`] and fall back to the conventional
//!   shape when the deadline or a start limit trips (§3.4 deployment
//!   safety).
//! * [`recovery`] — artifact integrity & recovery: validate the
//!   checksummed boot artifacts (pre-parse blob, snapshot image),
//!   retry transient reads with bounded backoff, and boot on without a
//!   damaged artifact, pricing every recovery as a
//!   [`recovery::RecoveryEvent`].
//! * [`telemetry`] — spans, the metrics snapshot, and the critical-path
//!   profiler over a finished boot.
//! * [`error`] — the workspace [`Error`] hierarchy.
//! * [`report`] — Figure-6-style comparison tables.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` at the workspace root for an end-to-end
//! conventional-vs-BB comparison on a small TV scenario.

pub mod booster;
pub mod bootup_engine;
pub mod config;
pub mod core_engine;
pub mod error;
pub mod fallback;
pub mod miner;
pub mod pipeline;
pub mod plan_cache;
pub mod recovery;
pub mod report;
pub mod service_engine;
pub mod telemetry;

pub use booster::{Boot, BootRequest, Checkpoint, CheckpointPhase, FullBootReport, Scenario};
pub use config::BbConfig;
pub use error::{Error, JobError};
pub use fallback::{
    fault_targets, run_with_fallback, with_supervision, BootOutcome, DegradedBoot, FallbackPolicy,
    FallbackReason,
};
pub use miner::{mine, EdgeSlack, MiningReport};
pub use pipeline::{
    execute_instrumented, execute_with_faults, BootPlanIr, PassDelta, Pipeline, PlanPass,
    STANDARD_PASSES,
};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use recovery::{
    resume_or_cold_boot, run_with_fallback_recovering, validate_preparse_blob, ArtifactKind,
    ArtifactRead, ArtifactVerdict, RecoveryAction, RecoveryEvent, RecoveryReason,
    MAX_ARTIFACT_RETRIES,
};
pub use report::{attribution_table, Comparison, Row};
pub use service_engine::{
    analyze, analyze_directives, identify_bb_group, load_model, Finding, ParseCostParams, PreParser,
};
pub use telemetry::{
    boot_spans, critical_path, metrics_snapshot, ordering_edge_slacks, pass_spans, profile,
    BootProfile, CriticalPath, CriticalStep, HistogramSummary, MetricsSnapshot,
};
