//! Boot-up Engine: fast init-scheme initialization and RCU Booster
//! Control (§3.2).
//!
//! Provides the init-phase task table of Figure 6(b) — the six systemd
//! setup tasks BB defers (logging 28 ms, kernel-module setup 28 ms,
//! hostname 13 ms, machine ID 9 ms, loopback 17 ms, test directories
//! 29 ms; 124 ms total) plus residual non-deferrable init work — the
//! service-phase housekeeping the Deferred Executor postpones
//! (Figure 6(c): 496 ms), and the RCU Booster Control process.

use bb_init::ManagerTask;
use bb_sim::{FlagId, Machine, Op, ProcessSpec, RcuMode, SimDuration};

use crate::config::BbConfig;

/// The six Figure 6(b) setup tasks the Deferred Executor may postpone,
/// with their costs in milliseconds.
const DEFERRABLE_INIT_TASKS: [(&str, u64); 6] = [
    ("enable-logging-scheme", 28),
    ("setup-kernel-module", 28),
    ("setup-hostname", 13),
    ("setup-machine-id", 9),
    ("setup-loopback-device", 17),
    ("test-directory", 29),
];

/// Whether `name` is one of the init-phase tasks the Deferred Executor
/// is allowed to postpone (the paper's six; the `init-core` residual
/// and scenario extras are not).
pub fn is_deferrable_init_task(name: &str) -> bool {
    DEFERRABLE_INIT_TASKS.iter().any(|&(n, _)| n == name)
}

/// The Figure 6(b) init-phase tasks. With the Deferred Executor active,
/// the six named setup tasks are deferred past boot completion; the
/// residual (71 ms of work systemd must do either way) always runs.
pub fn init_tasks(cfg: &BbConfig) -> Vec<ManagerTask> {
    let mut tasks = vec![ManagerTask::new("init-core", SimDuration::from_millis(71))];
    for (name, ms) in DEFERRABLE_INIT_TASKS {
        let t = ManagerTask::new(name, SimDuration::from_millis(ms));
        tasks.push(if cfg.deferred_executor {
            t.deferred()
        } else {
            t
        });
    }
    tasks
}

/// Total init-phase time (serial) implied by [`init_tasks`].
pub fn init_phase_cost(cfg: &BbConfig) -> SimDuration {
    init_tasks(cfg)
        .iter()
        .filter(|t| !t.deferred)
        .map(|t| t.cost)
        .sum()
}

/// Service-phase housekeeping the Deferred Executor postpones
/// (Figure 6(c)): journal flushing, udev settle bookkeeping, tmpfiles,
/// sysctl application, session bookkeeping — ~496 ms of CPU that
/// conventionally competes with service launching.
pub fn service_phase_tasks(cfg: &BbConfig) -> Vec<ManagerTask> {
    let items = [
        ("journal-flush", 118u64),
        ("udev-settle-bookkeeping", 96),
        ("tmpfiles-setup", 88),
        ("sysctl-apply", 64),
        ("session-bookkeeping", 74),
        ("update-done-check", 56),
    ];
    items
        .iter()
        .map(|&(name, ms)| {
            let t = ManagerTask::new(name, SimDuration::from_millis(ms));
            if cfg.deferred_executor {
                t.deferred()
            } else {
                t
            }
        })
        .collect()
}

/// Installs RCU Booster Control: with `boost` (the
/// [`crate::pipeline::RcuBoosterInstall`] pass's knob), switch the
/// machine to the boosted mode now (systemd's first task) and spawn the
/// control process that reverts to the classic mode at boot completion —
/// after boot there are rarely concurrent synchronizers, where the spin
/// path is cheaper (§4.3).
pub fn install_rcu_booster_control(machine: &mut Machine, boost: bool, boot_complete: FlagId) {
    if !boost {
        machine.set_rcu_mode(RcuMode::ClassicSpin);
        return;
    }
    machine.set_rcu_mode(RcuMode::Boosted);
    machine.spawn(
        ProcessSpec::new(
            "rcu-booster-control",
            vec![
                Op::WaitFlag(boot_complete),
                Op::SetRcuMode(RcuMode::ClassicSpin),
            ],
        )
        .with_nice(-20),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_sim::MachineConfig;

    #[test]
    fn conventional_init_phase_matches_paper_195ms() {
        let cost = init_phase_cost(&BbConfig::conventional());
        assert_eq!(cost.as_millis(), 195);
    }

    #[test]
    fn deferred_init_phase_matches_paper_71ms() {
        let cost = init_phase_cost(&BbConfig::full());
        assert_eq!(cost.as_millis(), 71);
    }

    #[test]
    fn deferred_task_budget_is_124ms() {
        let deferred: SimDuration = init_tasks(&BbConfig::full())
            .iter()
            .filter(|t| t.deferred)
            .map(|t| t.cost)
            .sum();
        assert_eq!(deferred.as_millis(), 124);
    }

    #[test]
    fn service_phase_tasks_sum_to_496ms() {
        let total: SimDuration = service_phase_tasks(&BbConfig::conventional())
            .iter()
            .map(|t| t.cost)
            .sum();
        assert_eq!(total.as_millis(), 496);
        assert!(service_phase_tasks(&BbConfig::conventional())
            .iter()
            .all(|t| !t.deferred));
        assert!(service_phase_tasks(&BbConfig::full())
            .iter()
            .all(|t| t.deferred));
    }

    #[test]
    fn booster_control_toggles_mode() {
        let mut m = Machine::new(MachineConfig::default());
        let gate = m.flag("boot-complete");
        install_rcu_booster_control(&mut m, true, gate);
        assert_eq!(m.rcu_mode(), RcuMode::Boosted);
        m.set_flag_external(gate);
        m.run();
        assert_eq!(m.rcu_mode(), RcuMode::ClassicSpin);
    }

    #[test]
    fn no_booster_means_classic_mode() {
        let mut m = Machine::new(MachineConfig::default());
        let gate = m.flag("boot-complete");
        install_rcu_booster_control(&mut m, false, gate);
        assert_eq!(m.rcu_mode(), RcuMode::ClassicSpin);
        assert_eq!(m.process_count(), 0);
    }
}
