//! Service Engine: BB Group Isolator, Booting Booster Manager,
//! Pre-parser, and Service Analyzer (§3.3).

use std::collections::BTreeSet;

use bb_init::{
    encode_units, EdgeKind, LoadModel, PlanOverrides, Transaction, Unit, UnitGraph, UnitName,
};
use bb_sim::{AccessPattern, SimDuration};

use crate::config::BbConfig;

// ---------------------------------------------------------------------
// BB Group Isolator + Booting Booster Manager
// ---------------------------------------------------------------------

/// Identifies the BB Group: the boot-critical services spanning from the
/// boot-completion definition (§3.3). Follows strong requirements and
/// self-declared `After=` orderings; foreign declarations are excluded
/// by construction, so developers cannot "play games with the critical
/// path by creating false dependencies".
pub fn identify_bb_group(graph: &UnitGraph, completion: &[UnitName]) -> BTreeSet<usize> {
    let seeds: Vec<usize> = completion
        .iter()
        .map(|n| {
            graph
                .idx(n)
                .unwrap_or_else(|| panic!("completion unit {n} not defined"))
        })
        .collect();
    graph.strong_closure(seeds)
}

/// Nice value the Booting Booster Manager gives BB Group processes.
pub const BB_GROUP_NICE: i8 = -15;

/// Builds the plan overrides for a configuration: with `bb_group` on,
/// the group is isolated, prioritized, and dispatched first (in
/// dependency order, "as a topmost job").
pub fn plan_overrides(
    graph: &UnitGraph,
    transaction: &Transaction,
    completion: &[UnitName],
    cfg: &BbConfig,
) -> PlanOverrides {
    let mut overrides = PlanOverrides::default();
    if !cfg.bb_group {
        return overrides;
    }
    let group = identify_bb_group(graph, completion);
    // Dispatch group members first, respecting their internal order.
    overrides.dispatch_first = transaction
        .execution_order(graph)
        .into_iter()
        .filter(|j| group.contains(j))
        .collect();
    for &j in &group {
        overrides.nice.insert(j, BB_GROUP_NICE);
        overrides
            .io_class
            .insert(j, bb_init::IoSchedulingClass::Realtime);
    }
    overrides.isolate = group;
    overrides
}

// ---------------------------------------------------------------------
// Pre-parser
// ---------------------------------------------------------------------

/// Cost parameters of configuration loading at boot.
#[derive(Debug, Clone, Copy)]
pub struct ParseCostParams {
    /// CPU per unit *file* opened conventionally (open/fstat/mmap and
    /// directory scanning amortized).
    pub open_cost_per_file: SimDuration,
    /// CPU per byte of unit-file text parsed.
    pub parse_cost_per_byte: SimDuration,
    /// CPU per unit for dependency resolution while parsing.
    pub parse_cost_per_unit: SimDuration,
    /// CPU per unit decoded from the binary cache.
    pub decode_cost_per_unit: SimDuration,
}

impl Default for ParseCostParams {
    /// Calibrated for the UE48H6200's Cortex-A9 so that a ~250-unit
    /// commercial set costs ≈150 ms of loading and ≈231 ms of parsing
    /// conventionally (Figure 6(d)), while the cache loads in
    /// single-digit milliseconds.
    fn default() -> Self {
        ParseCostParams {
            open_cost_per_file: SimDuration::from_micros(520),
            parse_cost_per_byte: SimDuration::from_nanos(650),
            parse_cost_per_unit: SimDuration::from_micros(850),
            decode_cost_per_unit: SimDuration::from_micros(22),
        }
    }
}

/// Pre-computed Pre-parser measurements for a unit set: the byte sizes
/// that drive the boot-time [`LoadModel`], captured once so thousands
/// of boots of the same scenario (a bb-fleet sweep) do not re-render
/// the unit-file text or re-encode the binary cache per boot.
///
/// Built from *real* byte counts: the rendered unit-file text for the
/// conventional path and the actual [`encode_units`] blob for the
/// cached path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreParser {
    /// Number of units in the set.
    pub unit_count: usize,
    /// Total rendered unit-file text size (conventional path).
    pub text_bytes: u64,
    /// Binary unit-cache blob size (pre-parsed path).
    pub blob_bytes: u64,
}

impl PreParser {
    /// Measures `units` once. This is the expensive step a sweep
    /// amortizes across boots.
    ///
    /// The blob's constant integrity envelope (content hash + CRC,
    /// [`bb_init::INTEGRITY_OVERHEAD`]) is excluded from the modelled
    /// cache-load I/O: 12 bytes is below the cost model's resolution,
    /// and excluding it keeps the calibration pins independent of the
    /// envelope's size.
    pub fn build(units: &[Unit]) -> PreParser {
        PreParser {
            unit_count: units.len(),
            text_bytes: units.iter().map(|u| u.to_unit_file().len() as u64).sum(),
            blob_bytes: (encode_units(units).len() - bb_init::INTEGRITY_OVERHEAD) as u64,
        }
    }

    /// Computes the boot-time [`LoadModel`] from the captured sizes.
    pub fn load_model(&self, params: &ParseCostParams, preparsed: bool) -> LoadModel {
        if preparsed {
            LoadModel {
                io_bytes: self.blob_bytes,
                pattern: AccessPattern::Sequential,
                cpu: params.decode_cost_per_unit * self.unit_count as u64,
            }
        } else {
            LoadModel {
                io_bytes: self.text_bytes,
                pattern: AccessPattern::Random,
                cpu: params.open_cost_per_file * self.unit_count as u64
                    + params.parse_cost_per_unit * self.unit_count as u64
                    + params.parse_cost_per_byte * self.text_bytes,
            }
        }
    }
}

/// Computes the boot-time [`LoadModel`] for a unit set (one-shot form
/// of [`PreParser::build`] + [`PreParser::load_model`]).
pub fn load_model(units: &[Unit], params: &ParseCostParams, preparsed: bool) -> LoadModel {
    PreParser::build(units).load_model(params, preparsed)
}

// ---------------------------------------------------------------------
// Service Analyzer
// ---------------------------------------------------------------------

/// One Service Analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// An ordering cycle among the named units.
    OrderingCycle(Vec<UnitName>),
    /// `a` is ordered both before and after `b` (contradiction).
    Contradiction(UnitName, UnitName),
    /// The same edge is declared more than once.
    DuplicateEdge {
        /// Prerequisite unit.
        src: UnitName,
        /// Dependent unit.
        dst: UnitName,
        /// How many declarations.
        count: usize,
    },
    /// A unit references an undefined unit.
    DanglingReference(UnitName),
    /// A unit orders or requires itself.
    SelfDependency(UnitName),
    /// A unit file used a directive that was parsed but not applied
    /// (real-systemd directives this model does not support, or unknown
    /// keys). Surfaced so dropped behavior is visible, not silent.
    UnsupportedDirective {
        /// Unit file the directive appeared in.
        file: String,
        /// 1-based line number.
        line: usize,
        /// The directive as `Section::Key`.
        directive: String,
        /// Whether the directive is real systemd (unsupported here) or
        /// entirely unknown.
        known_directive: bool,
    },
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::OrderingCycle(units) => {
                write!(f, "ordering cycle:")?;
                for u in units {
                    write!(f, " {u}")?;
                }
                Ok(())
            }
            Finding::Contradiction(a, b) => {
                write!(f, "contradiction: {a} ordered both before and after {b}")
            }
            Finding::DuplicateEdge { src, dst, count } => {
                write!(f, "duplicate: {dst} after {src} declared {count} times")
            }
            Finding::DanglingReference(n) => write!(f, "dangling reference to {n}"),
            Finding::SelfDependency(n) => write!(f, "{n} depends on itself"),
            Finding::UnsupportedDirective {
                file,
                line,
                directive,
                known_directive,
            } => {
                let why = if *known_directive {
                    "not supported by this model"
                } else {
                    "unknown"
                };
                write!(
                    f,
                    "{file} line {line}: directive {directive} dropped ({why})"
                )
            }
        }
    }
}

/// Converts the unit-file parser's per-file lint warnings into analyzer
/// findings, so `analyze` results and parse-time lint share one report
/// format. Pair with [`bb_init::parse_unit_dir_with_warnings`].
pub fn analyze_directives(warnings: &[(String, bb_init::DirectiveWarning)]) -> Vec<Finding> {
    warnings
        .iter()
        .map(|(file, w)| Finding::UnsupportedDirective {
            file: file.clone(),
            line: w.line,
            directive: w.directive.clone(),
            known_directive: w.kind == bb_init::DirectiveWarningKind::Unsupported,
        })
        .collect()
}

/// The Service Analyzer: investigates relations between services and
/// reports incorrect relations (circular dependencies and contradicting
/// requirements), as the paper's call-graph-based tool does offline.
pub fn analyze(graph: &UnitGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for cycle in graph.ordering_cycles() {
        findings.push(Finding::OrderingCycle(
            cycle.iter().map(|&i| graph.unit(i).name.clone()).collect(),
        ));
    }
    // Contradictions and duplicates from the raw edge list.
    let mut ordering_pairs: std::collections::BTreeMap<(usize, usize), usize> =
        std::collections::BTreeMap::new();
    for e in graph.edges() {
        if e.kind == EdgeKind::Ordering {
            if e.src == e.dst {
                findings.push(Finding::SelfDependency(graph.unit(e.src).name.clone()));
                continue;
            }
            *ordering_pairs.entry((e.src, e.dst)).or_default() += 1;
        }
    }
    for (&(src, dst), &count) in &ordering_pairs {
        if count > 1 {
            findings.push(Finding::DuplicateEdge {
                src: graph.unit(src).name.clone(),
                dst: graph.unit(dst).name.clone(),
                count,
            });
        }
        if src < dst && ordering_pairs.contains_key(&(dst, src)) {
            findings.push(Finding::Contradiction(
                graph.unit(src).name.clone(),
                graph.unit(dst).name.clone(),
            ));
        }
    }
    for name in graph.missing() {
        findings.push(Finding::DanglingReference(name.clone()));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_init::ServiceType;

    fn svc(name: &str) -> Unit {
        Unit::new(UnitName::new(name))
    }

    fn tv_units() -> Vec<Unit> {
        vec![
            svc("tv-boot.target")
                .requires("fasttv.service")
                .requires("messenger.service"),
            svc("var.mount").with_type(ServiceType::Oneshot),
            svc("dbus.service").needs("var.mount"),
            svc("tuner.service").needs("dbus.service"),
            svc("fasttv.service")
                .needs("tuner.service")
                .needs("dbus.service"),
            // Not boot-critical; abusively orders itself before var.mount
            // (so it cannot also depend on anything after the mount).
            svc("messenger.service").before("var.mount"),
        ]
    }

    #[test]
    fn bb_group_is_the_strong_closure_of_completion() {
        let g = UnitGraph::build(tv_units()).unwrap();
        let group = identify_bb_group(&g, &[UnitName::new("fasttv.service")]);
        let names: Vec<&str> = group.iter().map(|&i| g.unit(i).name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "var.mount",
                "dbus.service",
                "tuner.service",
                "fasttv.service"
            ]
        );
    }

    #[test]
    fn overrides_prioritize_and_isolate_group() {
        let g = UnitGraph::build(tv_units()).unwrap();
        let tx = Transaction::build(&g, "tv-boot.target").unwrap();
        let completion = vec![UnitName::new("fasttv.service")];
        let o = plan_overrides(&g, &tx, &completion, &BbConfig::full());
        assert_eq!(o.isolate.len(), 4);
        assert!(o.nice.values().all(|&n| n == BB_GROUP_NICE));
        // Dispatch-first respects internal order: var.mount before dbus.
        let pos = |n: &str| {
            o.dispatch_first
                .iter()
                .position(|&j| g.unit(j).name.as_str() == n)
                .unwrap()
        };
        assert!(pos("var.mount") < pos("dbus.service"));
        assert!(pos("dbus.service") < pos("fasttv.service"));
    }

    #[test]
    fn conventional_config_gets_no_overrides() {
        let g = UnitGraph::build(tv_units()).unwrap();
        let tx = Transaction::build(&g, "tv-boot.target").unwrap();
        let o = plan_overrides(
            &g,
            &tx,
            &[UnitName::new("fasttv.service")],
            &BbConfig::conventional(),
        );
        assert!(o.isolate.is_empty() && o.nice.is_empty() && o.dispatch_first.is_empty());
    }

    #[test]
    fn preparsed_load_model_is_much_cheaper() {
        let units = tv_units();
        let params = ParseCostParams::default();
        let conv = load_model(&units, &params, false);
        let cached = load_model(&units, &params, true);
        assert!(conv.cpu > cached.cpu * 5, "{} vs {}", conv.cpu, cached.cpu);
        assert_eq!(cached.pattern, AccessPattern::Sequential);
        assert_eq!(conv.pattern, AccessPattern::Random);
        assert!(cached.io_bytes > 0);
    }

    #[test]
    fn analyzer_finds_cycles_contradictions_duplicates() {
        let mut units = vec![
            svc("a.service").after("b.service").before("b.service"),
            svc("b.service"),
            svc("c.service").after("ghost.service"),
            svc("d.service").after("d.service"),
        ];
        // Duplicate edge: e after b declared twice.
        units.push(svc("e.service").after("b.service").after("b.service"));
        let g = UnitGraph::build(units).unwrap();
        let findings = analyze(&g);
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::OrderingCycle(_))));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::Contradiction(..))));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::DuplicateEdge { count: 2, .. })));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::DanglingReference(_))));
        assert!(findings
            .iter()
            .any(|f| matches!(f, Finding::SelfDependency(_))));
    }

    #[test]
    fn clean_graph_has_no_findings() {
        let g = UnitGraph::build(tv_units()).unwrap();
        assert!(analyze(&g).is_empty());
    }

    #[test]
    fn findings_render() {
        let g = UnitGraph::build(vec![
            svc("a.service").after("b.service"),
            svc("b.service").after("a.service"),
        ])
        .unwrap();
        let text = analyze(&g)
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("ordering cycle"));
        assert!(text.contains("a.service"));
    }
}
