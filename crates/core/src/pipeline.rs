//! The boot-plan pass pipeline: every BB mechanism as an explicit
//! transformation over one intermediate representation.
//!
//! The paper's three engines are each, at heart, a rewrite of the boot
//! plan — defer initcalls, postpone init-internal tasks, isolate the BB
//! Group, swap text parsing for the binary cache. This module makes the
//! rewrites first-class: a [`BootPlanIr`] bundles everything a boot
//! needs, each mechanism is a [`PlanPass`] (`enabled` / `apply`), and a
//! [`Pipeline`] runs the enabled passes in order, recording a
//! [`PassDelta`] per pass. The deltas give per-feature attribution from
//! a *single* boot — what previously required re-running whole ablation
//! sweeps — and every future mechanism (miner-driven edge removal,
//! pre-fork zygote) lands as one new pass.
//!
//! Pass order is fixed and significant only where passes share IR
//! fields (the two `bb_group` passes both derive the group; the
//! isolator runs first). Passes only transform the IR; machine-visible
//! execution is entirely in [`execute`], which replays the exact
//! op order of the pre-pipeline facade so boot timelines are
//! bit-identical to the old `boost` path.

use std::collections::BTreeSet;

use bb_init::{
    run_boot, BootPlan, EngineConfig, EngineMode, LoadModel, ManagerCosts, ManagerTask,
    PlanOverrides, Transaction, UnitGraph, UnitName, WorkloadMap,
};
use bb_kernel::{execute_kernel_boot, Criticality, KernelPlan, ModuleCatalog};
use bb_sim::{AccessPattern, DeviceProfile, Machine, MachineConfig, Op, SimDuration};

use crate::booster::{FullBootReport, Scenario};
use crate::bootup_engine;
use crate::config::BbConfig;
use crate::core_engine::{self, ModuleStrategy};
use crate::error::Error;
use crate::service_engine::{self, ParseCostParams, PreParser};

// ---------------------------------------------------------------------
// The IR
// ---------------------------------------------------------------------

/// Everything one boot needs, in one place, before any machine exists.
///
/// Built by [`Pipeline::plan`] in the *conventional* shape (no BB
/// mechanism applied); passes then transform it. Large read-only
/// inputs (module catalog, workload bodies) are borrowed from the
/// [`Scenario`] so a fleet sweep does not clone them per boot.
#[derive(Debug)]
pub struct BootPlanIr<'s> {
    /// Scenario name, for reports.
    pub name: &'s str,
    /// The configuration this plan was specialized for.
    pub cfg: BbConfig,
    /// Machine shape (cores, speed, quantum, RCU parameters).
    pub machine: MachineConfig,
    /// Boot storage profile (device 0 by convention).
    pub storage: DeviceProfile,
    /// Kernel plan; passes flip its defer knobs.
    pub kernel: KernelPlan,
    /// Loadable kernel components (read-only input).
    pub modules: &'s ModuleCatalog,
    /// How the service phase handles kernel modules.
    pub module_strategy: ModuleStrategy,
    /// Service workload bodies keyed by `ExecStart=` (read-only input).
    pub workloads: &'s WorkloadMap,
    /// The unit graph.
    pub graph: UnitGraph,
    /// The expanded boot transaction.
    pub transaction: Transaction,
    /// Units whose readiness defines boot completion.
    pub completion: Vec<UnitName>,
    /// Plan overrides (isolation, priorities, dispatch order, …).
    pub overrides: PlanOverrides,
    /// Serial init-phase task table.
    pub init_tasks: Vec<ManagerTask>,
    /// Service-phase housekeeping task table.
    pub service_phase_tasks: Vec<ManagerTask>,
    /// Dispatch order of the transaction, recomputed by
    /// [`Pipeline::plan`] after the passes run so every boot of this
    /// plan skips the per-boot Kahn/SCC walk (plan tweaks only mutate
    /// [`PlanOverrides`], which the base order does not depend on).
    pub execution_order: Vec<usize>,
    /// Unit-configuration load model.
    pub load: LoadModel,
    /// Manager cost knobs.
    pub manager_costs: ManagerCosts,
    /// Parse cost parameters (kept for passes that recompute `load`).
    pub parse_params: ParseCostParams,
    /// Pre-parser measurements of the unit set.
    pub pre: PreParser,
    /// Whether the RCU Booster mode switch is installed at kernel boot.
    pub boost_rcu: bool,
}

impl<'s> BootPlanIr<'s> {
    /// Builds the conventional-shape IR for `scenario`.
    ///
    /// `pre` supplies pre-built [`PreParser`] measurements (the
    /// sweep-amortized path); when `None` they are measured here.
    pub fn from_scenario(
        scenario: &'s Scenario,
        cfg: &BbConfig,
        pre: Option<&PreParser>,
    ) -> Result<Self, Error> {
        let graph = UnitGraph::build(scenario.units.clone()).map_err(Error::Graph)?;
        let transaction =
            Transaction::build(&graph, &scenario.target).map_err(Error::Transaction)?;
        let pre = pre
            .copied()
            .unwrap_or_else(|| PreParser::build(&scenario.units));
        let mut kernel = scenario.kernel.clone();
        kernel.defer_memory = false;
        kernel.defer_initcalls = false;
        kernel.defer_journal = false;
        let mut init_tasks = scenario.extra_init_tasks.clone();
        init_tasks.extend(bootup_engine::init_tasks(&BbConfig::conventional()));
        let execution_order = transaction.execution_order(&graph);
        Ok(BootPlanIr {
            name: &scenario.name,
            cfg: *cfg,
            machine: scenario.machine,
            storage: scenario.storage,
            kernel,
            modules: &scenario.modules,
            module_strategy: ModuleStrategy::ExternalKo {
                workers: core_engine::MODULE_LOADER_WORKERS,
            },
            workloads: &scenario.workloads,
            graph,
            transaction,
            completion: scenario.completion.clone(),
            overrides: PlanOverrides::default(),
            init_tasks,
            service_phase_tasks: bootup_engine::service_phase_tasks(&BbConfig::conventional()),
            execution_order,
            load: pre.load_model(&scenario.parse_params, false),
            manager_costs: scenario.manager_costs,
            parse_params: scenario.parse_params,
            pre,
            boost_rcu: false,
        })
    }

    fn cores(&self) -> u64 {
        self.machine.cores.max(1) as u64
    }

    /// Storage service time for one request.
    pub fn io_time(&self, bytes: u64, pattern: AccessPattern) -> SimDuration {
        self.storage.service_time(bytes, pattern)
    }

    /// Coarse serial cost of an op list on this machine (for pass
    /// saving estimates only — the simulator is the ground truth).
    fn ops_cost(&self, ops: &[Op]) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for op in ops {
            match op {
                Op::Compute(d) | Op::RcuReadHold(d) | Op::Sleep(d) => total += *d,
                Op::IoRead { bytes, pattern, .. } => total += self.io_time(*bytes, *pattern),
                Op::RcuSync => total += self.machine.rcu_params.base_grace_period,
                _ => {}
            }
        }
        total
    }

    /// Coarse serial cost of one job's pre-ready body (fork included).
    fn job_body_cost(&self, job: usize) -> SimDuration {
        let mut total = self.manager_costs.fork_exec_cost;
        total += match self.job_body(job) {
            Some(body) => self.ops_cost(&body.pre_ready),
            // Engine default body: 2 ms of compute.
            None => SimDuration::from_millis(2),
        };
        total
    }

    fn job_body(&self, job: usize) -> Option<&bb_init::ServiceBody> {
        self.graph
            .unit(job)
            .exec
            .exec_start
            .as_deref()
            .and_then(|e| self.workloads.get(e))
    }

    /// `synchronize_rcu` calls issued by transaction jobs during boot.
    fn boot_rcu_syncs(&self) -> u64 {
        let mut syncs = 0;
        for &j in &self.transaction.jobs {
            if let Some(body) = self.job_body(j) {
                syncs += body
                    .pre_ready
                    .iter()
                    .chain(body.post_ready.iter())
                    .filter(|op| matches!(op, Op::RcuSync))
                    .count() as u64;
            }
        }
        syncs
    }
}

// ---------------------------------------------------------------------
// Pass deltas
// ---------------------------------------------------------------------

/// What one pass did to the plan: the provenance record that gives
/// per-feature attribution from a single boot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassDelta {
    /// The pass that produced this delta.
    pub pass: &'static str,
    /// Kernel initcalls moved past boot completion.
    pub initcalls_deferred: usize,
    /// Kernel modules whose initialization moved past completion.
    pub modules_deferred: usize,
    /// Manager tasks (init-phase + service-phase) moved past completion.
    pub tasks_deferred: usize,
    /// Ordering edges the isolation rewrite strips from group members.
    pub edges_stripped: usize,
    /// Units touched (isolated, reprioritized, or RCU-affected).
    pub units_touched: usize,
    /// Boot-window storage bytes the pass removed (conventional reads
    /// that no longer happen) minus bytes it added.
    pub io_bytes_shifted: i64,
    /// Coarse estimate of boot-time saved by this pass alone. Serial
    /// plan edits (memory init, journal, init tasks, load model) are
    /// near-exact; contention-mediated passes (modularizer service
    /// phase, RCU, isolation) are analytic approximations — the
    /// simulator remains the ground truth.
    pub estimated_saving: SimDuration,
}

impl PassDelta {
    fn new(pass: &'static str) -> Self {
        PassDelta {
            pass,
            ..PassDelta::default()
        }
    }

    /// One-line human summary of the delta ("what moved").
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.initcalls_deferred > 0 {
            parts.push(format!("{} initcalls deferred", self.initcalls_deferred));
        }
        if self.modules_deferred > 0 {
            parts.push(format!("{} modules deferred", self.modules_deferred));
        }
        if self.tasks_deferred > 0 {
            parts.push(format!("{} tasks deferred", self.tasks_deferred));
        }
        if self.edges_stripped > 0 {
            parts.push(format!("{} edges stripped", self.edges_stripped));
        }
        if self.units_touched > 0 {
            parts.push(format!("{} units touched", self.units_touched));
        }
        if self.io_bytes_shifted != 0 {
            parts.push(format!("{:+} KiB I/O", self.io_bytes_shifted / 1024));
        }
        if parts.is_empty() {
            parts.push("plan knobs only".to_string());
        }
        parts.join(", ")
    }
}

// ---------------------------------------------------------------------
// The pass trait and the seven BB passes
// ---------------------------------------------------------------------

/// One BB mechanism as a plan transformation.
pub trait PlanPass {
    /// Stable pass name (kebab-case; used by pass-set selections).
    fn name(&self) -> &'static str;
    /// Whether `cfg` activates this pass.
    fn enabled(&self, cfg: &BbConfig) -> bool;
    /// Sets the config flag(s) that activate this pass (the inverse of
    /// [`PlanPass::enabled`], used to turn pass sets into configs).
    fn enable(&self, cfg: &mut BbConfig);
    /// Transforms the plan, returning what changed. Must be idempotent:
    /// applying twice yields the same plan as applying once.
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta;
}

/// Core Engine: initialize only required memory eagerly, the rest in a
/// background process after boot completion (§3.1).
pub struct DeferMemoryInit;

impl PlanPass for DeferMemoryInit {
    fn name(&self) -> &'static str {
        "defer-memory-init"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.defer_memory
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.defer_memory = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        ir.kernel.defer_memory = true;
        let mut d = PassDelta::new(self.name());
        // Serial kernel-phase work removed exactly.
        d.estimated_saving = ir
            .kernel
            .memory
            .full_init_cost()
            .saturating_sub(ir.kernel.memory.eager_init_cost());
        d
    }
}

/// Core Engine: On-demand Modularizer — deferrable kernel components
/// become built-ins initialized after boot completion, replacing both
/// deferrable initcalls and the service-phase external-`.ko` loading
/// (§3.1).
pub struct OnDemandModularizer;

impl PlanPass for OnDemandModularizer {
    fn name(&self) -> &'static str {
        "ondemand-modularizer"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.ondemand_modularizer
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.ondemand_modularizer = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        ir.kernel.defer_initcalls = true;
        ir.module_strategy = ModuleStrategy::DeferredBuiltin;
        let mut d = PassDelta::new(self.name());
        d.initcalls_deferred = ir.kernel.initcalls.partition(true).1.len();
        d.modules_deferred = ir.modules.deferrable().count();
        d.io_bytes_shifted = ir.modules.total_image_bytes() as i64;
        // Serial initcall time removed exactly; the `.ko` loading that
        // no longer competes with services is contention-mediated:
        // spread its CPU over the cores, and charge only a sliver of
        // its device time — module reads mostly overlap the (long,
        // compute-bound) service phase, so boot storage has slack. The
        // 0.1 utilization factor is calibrated against the TV
        // scenario's measured single-feature ablation.
        let initcall_relief = ir
            .kernel
            .initcalls
            .total_cost(Some(Criticality::Deferrable));
        let mut ko_cpu = ir.modules.external_cpu_cost(None);
        let mut ko_io = SimDuration::ZERO;
        for m in ir.modules.modules.iter() {
            ko_io += ir.io_time(m.image_bytes, AccessPattern::Random);
        }
        // Boot-critical init cost still runs eagerly as a built-in.
        ko_cpu = ko_cpu.saturating_sub(
            ir.modules
                .boot_critical()
                .map(|m| m.init_cost)
                .sum::<SimDuration>(),
        );
        d.estimated_saving =
            initcall_relief + ko_cpu.scale(1.0 / ir.cores() as f64) + ko_io.scale(0.1);
        d
    }
}

/// Core Engine: RCU Booster — boosted (blocking) `synchronize_rcu`
/// during boot, reverted to the classic spin path at completion by the
/// control process the executor installs (§3.1).
pub struct RcuBoosterInstall;

impl PlanPass for RcuBoosterInstall {
    fn name(&self) -> &'static str {
        "rcu-booster"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.rcu_booster
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.rcu_booster = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        ir.boost_rcu = true;
        let mut d = PassDelta::new(self.name());
        let syncs = ir.boot_rcu_syncs();
        d.units_touched = ir
            .transaction
            .jobs
            .iter()
            .filter(|&&j| {
                ir.job_body(j).is_some_and(|b| {
                    b.pre_ready
                        .iter()
                        .chain(b.post_ready.iter())
                        .any(|op| matches!(op, Op::RcuSync))
                })
            })
            .count();
        // Classic contended waiters spin on-CPU for their whole queue
        // wait; with W writers racing, the queue makes the average wait
        // a multiple of the base grace period. The boosted path sleeps
        // instead, freeing the cores for services. Charge ~2 grace
        // periods of reclaimed CPU per sync, spread over the cores.
        let grace = ir.machine.rcu_params.base_grace_period;
        d.estimated_saving = (grace * syncs * 2).scale(1.0 / ir.cores() as f64);
        d
    }
}

/// Boot-up Engine: Deferred Executor — postpone the init-scheme's
/// internal tasks (Figure 6(b)/(c)) and the EXT4 journal enabling past
/// boot completion (§3.2).
pub struct DeferredExecutor;

impl PlanPass for DeferredExecutor {
    fn name(&self) -> &'static str {
        "deferred-executor"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.deferred_executor || cfg.defer_journal
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.deferred_executor = true;
        cfg.defer_journal = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        let mut d = PassDelta::new(self.name());
        let mut saving = SimDuration::ZERO;
        if ir.cfg.deferred_executor {
            for t in &mut ir.init_tasks {
                if bootup_engine::is_deferrable_init_task(&t.name) {
                    if !t.deferred {
                        d.tasks_deferred += 1;
                    }
                    t.deferred = true;
                    // Serial init-phase time removed exactly.
                    saving += t.cost;
                }
            }
            let mut housekeeping = SimDuration::ZERO;
            for t in &mut ir.service_phase_tasks {
                if !t.deferred {
                    d.tasks_deferred += 1;
                }
                t.deferred = true;
                housekeeping += t.cost;
            }
            // Housekeeping competes with services for cores.
            saving += housekeeping.scale(1.0 / ir.cores() as f64);
        }
        if ir.cfg.defer_journal {
            ir.kernel.defer_journal = true;
            // Serial rootfs-mount time removed exactly.
            saving += ir.kernel.rootfs.journal_enable_cost;
        }
        d.estimated_saving = saving;
        d
    }
}

/// Service Engine: Pre-parser — load the binary unit cache sequentially
/// instead of reading and parsing unit-file text (§3.3).
pub struct PreParserLoad;

impl PlanPass for PreParserLoad {
    fn name(&self) -> &'static str {
        "pre-parser"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.preparser
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.preparser = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        let conv = ir.pre.load_model(&ir.parse_params, false);
        let cached = ir.pre.load_model(&ir.parse_params, true);
        ir.load = cached;
        let mut d = PassDelta::new(self.name());
        d.units_touched = ir.pre.unit_count;
        d.io_bytes_shifted = conv.io_bytes as i64 - cached.io_bytes as i64;
        // The manager loads serially, so the model swap is near-exact.
        let conv_cost = ir.io_time(conv.io_bytes, conv.pattern) + conv.cpu;
        let cached_cost = ir.io_time(cached.io_bytes, cached.pattern) + cached.cpu;
        d.estimated_saving = conv_cost.saturating_sub(cached_cost);
        d
    }
}

/// Service Engine: BB Group Isolator — group members ignore foreign
/// ordering declarations and never wait on non-members (§3.3).
pub struct GroupIsolator;

impl PlanPass for GroupIsolator {
    fn name(&self) -> &'static str {
        "group-isolator"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.bb_group
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.bb_group = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        let group = service_engine::identify_bb_group(&ir.graph, &ir.completion);
        let mut d = PassDelta::new(self.name());
        d.units_touched = group.len();
        // Count the ordering in-edges the engine's isolation filter will
        // strip (same predicate as the engine, deduplicated per (src,
        // dst) like the engine's per-dependency dedup) and estimate the
        // wait the stripped gates no longer impose on the group chain.
        let mut stripped_srcs: BTreeSet<usize> = BTreeSet::new();
        for &j in &group {
            let mut seen = BTreeSet::new();
            for e in ir.graph.ordering_in_edges(j) {
                if !ir.transaction.jobs.contains(&e.src) {
                    continue;
                }
                let kept = group.contains(&e.src) && group.contains(&e.declared_by);
                if !kept && seen.insert(e.src) {
                    d.edges_stripped += 1;
                    stripped_srcs.insert(e.src);
                }
            }
        }
        let mut gate_cost = SimDuration::ZERO;
        for &src in &stripped_srcs {
            gate_cost += ir.job_body_cost(src);
        }
        // Stripped prerequisites still run, just concurrently with the
        // group instead of ahead of it.
        d.estimated_saving = gate_cost.scale(1.0 / ir.cores() as f64);
        ir.overrides.isolate = group;
        d
    }
}

/// Service Engine: Booting Booster Manager — dispatch the BB Group
/// first ("as a topmost job") and prioritize its members' CPU and I/O
/// (§3.3).
pub struct BbManagerPriority;

impl PlanPass for BbManagerPriority {
    fn name(&self) -> &'static str {
        "bb-manager-priority"
    }
    fn enabled(&self, cfg: &BbConfig) -> bool {
        cfg.bb_group
    }
    fn enable(&self, cfg: &mut BbConfig) {
        cfg.bb_group = true;
    }
    fn apply(&self, ir: &mut BootPlanIr<'_>) -> PassDelta {
        let group = service_engine::identify_bb_group(&ir.graph, &ir.completion);
        // Passes never reshape the transaction, so the order cached at
        // IR construction is current.
        let order = ir.execution_order.clone();
        ir.overrides.dispatch_first = order
            .iter()
            .copied()
            .filter(|j| group.contains(j))
            .collect();
        for &j in &group {
            ir.overrides.nice.insert(j, service_engine::BB_GROUP_NICE);
            ir.overrides
                .io_class
                .insert(j, bb_init::IoSchedulingClass::Realtime);
        }
        let mut d = PassDelta::new(self.name());
        d.units_touched = group.len();
        // Dispatch-queue relief: group members no longer sit behind the
        // manager's per-job dispatch work for every earlier job.
        let mut skipped: u64 = 0;
        for (new_pos, &j) in ir.overrides.dispatch_first.iter().enumerate() {
            if let Some(old_pos) = order.iter().position(|&o| o == j) {
                skipped += old_pos.saturating_sub(new_pos) as u64;
            }
        }
        // Priority shielding, the dominant term: at BB_GROUP_NICE with
        // realtime I/O, the group chain preempts the rest of the
        // transaction instead of time-sharing with it, so the foreign
        // pre-ready work stops stretching the critical path.
        let mut foreign = SimDuration::ZERO;
        for &j in &ir.transaction.jobs {
            if !group.contains(&j) {
                foreign += ir.job_body_cost(j);
            }
        }
        d.estimated_saving = ir.manager_costs.dispatch_cpu_per_job * skipped
            + foreign.scale(1.0 / ir.cores() as f64);
        d
    }
}

// ---------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------

/// The standard pass names, in pipeline order.
pub const STANDARD_PASSES: [&str; 7] = [
    "defer-memory-init",
    "ondemand-modularizer",
    "rcu-booster",
    "deferred-executor",
    "pre-parser",
    "group-isolator",
    "bb-manager-priority",
];

/// An ordered set of [`PlanPass`]es plus the machinery to run them and
/// execute the resulting plan.
pub struct Pipeline {
    passes: Vec<Box<dyn PlanPass>>,
}

impl Pipeline {
    /// The seven BB passes in standard order.
    pub fn standard() -> Pipeline {
        Pipeline {
            passes: vec![
                Box::new(DeferMemoryInit),
                Box::new(OnDemandModularizer),
                Box::new(RcuBoosterInstall),
                Box::new(DeferredExecutor),
                Box::new(PreParserLoad),
                Box::new(GroupIsolator),
                Box::new(BbManagerPriority),
            ],
        }
    }

    /// All passes, in order.
    pub fn passes(&self) -> impl Iterator<Item = &dyn PlanPass> {
        self.passes.iter().map(|p| p.as_ref())
    }

    /// The passes `cfg` activates, in order.
    pub fn enabled<'a>(&'a self, cfg: &'a BbConfig) -> impl Iterator<Item = &'a dyn PlanPass> {
        self.passes().filter(move |p| p.enabled(cfg))
    }

    /// Turns a pass-name selection into the [`BbConfig`] that enables
    /// exactly those passes. Returns `None` on an unknown pass name.
    pub fn config_for(&self, pass_names: &[&str]) -> Option<BbConfig> {
        let mut cfg = BbConfig::conventional();
        for name in pass_names {
            let pass = self.passes().find(|p| p.name() == *name)?;
            pass.enable(&mut cfg);
        }
        Some(cfg)
    }

    /// Builds the IR for `scenario` and runs the enabled passes over it,
    /// returning the transformed plan and the per-pass deltas.
    pub fn plan<'s>(
        &self,
        scenario: &'s Scenario,
        cfg: &BbConfig,
        pre: Option<&PreParser>,
    ) -> Result<(BootPlanIr<'s>, Vec<PassDelta>), Error> {
        let mut ir = BootPlanIr::from_scenario(scenario, cfg, pre)?;
        let mut deltas = Vec::new();
        for pass in self.enabled(cfg) {
            deltas.push(pass.apply(&mut ir));
        }
        Ok((ir, deltas))
    }

    /// Plans and executes `scenario` under `cfg`.
    pub fn run(&self, scenario: &Scenario, cfg: &BbConfig) -> Result<FullBootReport, Error> {
        self.run_with_machine(scenario, cfg).map(|(r, _)| r)
    }

    /// [`Pipeline::run`], also returning the machine (for bootcharts).
    pub fn run_with_machine(
        &self,
        scenario: &Scenario,
        cfg: &BbConfig,
    ) -> Result<(FullBootReport, Machine), Error> {
        let (ir, deltas) = self.plan(scenario, cfg, None)?;
        Ok(execute(&ir, deltas))
    }

    /// [`Pipeline::run`] with pre-built [`PreParser`] measurements (the
    /// sweep-amortized entry point).
    pub fn run_prepared(
        &self,
        scenario: &Scenario,
        cfg: &BbConfig,
        pre: &PreParser,
    ) -> Result<FullBootReport, Error> {
        let (ir, deltas) = self.plan(scenario, cfg, Some(pre))?;
        Ok(execute(&ir, deltas).0)
    }

    /// [`Pipeline::run_with_machine`], letting the caller adjust the
    /// plan overrides after the passes ran — e.g. the §4.2 experiment
    /// that manually isolates *only* `var.mount`.
    pub fn run_custom(
        &self,
        scenario: &Scenario,
        cfg: &BbConfig,
        tweak: impl FnOnce(&UnitGraph, &Transaction, &mut PlanOverrides),
    ) -> Result<(FullBootReport, Machine), Error> {
        let (mut ir, deltas) = self.plan(scenario, cfg, None)?;
        {
            let BootPlanIr {
                ref graph,
                ref transaction,
                ref mut overrides,
                ..
            } = ir;
            tweak(graph, transaction, overrides);
        }
        Ok(execute(&ir, deltas))
    }
}

/// Executes a (pass-transformed) plan end to end, replaying the exact
/// machine-op order of the pre-pipeline facade: kernel boot, RCU
/// Booster Control, module handling, then the init scheme via
/// [`bb_init::run_boot`].
pub fn execute(ir: &BootPlanIr<'_>, deltas: Vec<PassDelta>) -> (FullBootReport, Machine) {
    execute_with_faults(ir, deltas, &bb_sim::FaultPlan::none())
}

/// [`execute`] with a [`bb_sim::FaultPlan`] installed before the kernel
/// boots, so device faults afflict kernel-phase reads too. Installing
/// the empty plan is a strict no-op: the fault-free path is
/// bit-identical to [`execute`].
pub fn execute_with_faults(
    ir: &BootPlanIr<'_>,
    deltas: Vec<PassDelta>,
    faults: &bb_sim::FaultPlan,
) -> (FullBootReport, Machine) {
    execute_instrumented(ir, deltas, faults, false)
}

/// [`execute_with_faults`] with the machine's telemetry sink optionally
/// armed before any work runs, so every RCU wait, dispatch, and I/O
/// completion of the boot lands in the metrics registry. With
/// `telemetry` false this is exactly [`execute_with_faults`]: the sink
/// stays absent and the hot paths reduce to an `is_some()` check, so
/// timelines are bit-identical either way (the proptest in
/// `tests/full_boot.rs` pins this).
pub fn execute_instrumented(
    ir: &BootPlanIr<'_>,
    deltas: Vec<PassDelta>,
    faults: &bb_sim::FaultPlan,
    telemetry: bool,
) -> (FullBootReport, Machine) {
    execute_pooled(ir, deltas, faults, telemetry, None)
}

/// [`execute_instrumented`] drawing the machine from a caller-held
/// [`MachineBuilder`] pool when one is supplied, so a loop that runs
/// many boots (a fleet cell, a sweep) reuses one machine's allocations
/// across jobs instead of re-growing every table from empty. The
/// builder contract guarantees recycled machines are observationally
/// identical to fresh ones, so results are bit-identical either way.
pub(crate) fn execute_pooled(
    ir: &BootPlanIr<'_>,
    deltas: Vec<PassDelta>,
    faults: &bb_sim::FaultPlan,
    telemetry: bool,
    builder: Option<&mut bb_sim::MachineBuilder>,
) -> (FullBootReport, Machine) {
    let (machine, kernel, device) =
        execute_prefix_pooled(PrefixView::of_ir(ir), faults, telemetry, builder);
    execute_suffix(ir, deltas, machine, kernel, device)
}

/// Executes a cached [`OwnedPlan`] end to end — the zero-clone path a
/// [`crate::PlanCache`] hit takes: prefix and suffix both borrow
/// straight out of the stored plan (plus the scenario's read-only
/// inputs), so nothing is re-planned and nothing is cloned per boot.
/// Planning is deterministic, so the timeline is bit-identical to a
/// fresh [`Pipeline::plan`] + execute of the same (scenario, config).
pub(crate) fn execute_pooled_owned(
    plan: &OwnedPlan,
    scenario: &Scenario,
    faults: &bb_sim::FaultPlan,
    telemetry: bool,
    builder: Option<&mut bb_sim::MachineBuilder>,
) -> (FullBootReport, Machine) {
    let (machine, kernel, device) = execute_prefix_pooled(
        PrefixView::of_owned(plan, scenario),
        faults,
        telemetry,
        builder,
    );
    execute_suffix_view(
        SuffixView::of_owned(plan, scenario),
        plan.deltas().to_vec(),
        machine,
        kernel,
        device,
    )
}

/// Borrowed view of the plan pieces the boot *prefix* needs —
/// everything up to (and including) the kernel→init handoff: machine
/// creation, storage, fault plan, kernel boot, the RCU Booster Control
/// installation, and module loading setup. This is the shared phase a
/// checkpoint captures; the only prefix products the suffix needs
/// beyond the machine itself are the kernel report and the
/// boot-storage device id.
///
/// Constructible
/// from a fresh [`BootPlanIr`] or straight from an [`OwnedPlan`] — the
/// [`crate::PlanCache`] hit paths go through the latter so a cached
/// boot (or checkpoint) never re-plans and never clones the kernel
/// plan.
pub(crate) struct PrefixView<'a> {
    machine: MachineConfig,
    storage: DeviceProfile,
    kernel: &'a KernelPlan,
    modules: &'a ModuleCatalog,
    module_strategy: ModuleStrategy,
    boost_rcu: bool,
}

impl<'a> PrefixView<'a> {
    pub(crate) fn of_ir(ir: &'a BootPlanIr<'_>) -> Self {
        PrefixView {
            machine: ir.machine,
            storage: ir.storage,
            kernel: &ir.kernel,
            modules: ir.modules,
            module_strategy: ir.module_strategy,
            boost_rcu: ir.boost_rcu,
        }
    }

    pub(crate) fn of_owned(plan: &'a OwnedPlan, scenario: &'a Scenario) -> Self {
        PrefixView {
            machine: plan.machine,
            storage: plan.storage,
            kernel: &plan.kernel,
            modules: &scenario.modules,
            module_strategy: plan.module_strategy,
            boost_rcu: plan.boost_rcu,
        }
    }
}

/// Executes the boot prefix described by `view`, constructing the
/// machine through `builder` when one is supplied (allocation reuse
/// across boots).
pub(crate) fn execute_prefix_pooled(
    view: PrefixView<'_>,
    faults: &bb_sim::FaultPlan,
    telemetry: bool,
    builder: Option<&mut bb_sim::MachineBuilder>,
) -> (Machine, bb_kernel::KernelReport, bb_sim::DeviceId) {
    let mut machine = match builder {
        Some(b) => b.build(view.machine),
        None => Machine::new(view.machine),
    };
    if telemetry {
        machine.enable_telemetry();
    }
    let device = machine.add_device("boot-storage", view.storage);
    machine.install_fault_plan(faults);
    let boot_complete = machine.flag("boot-complete");

    let kernel = execute_kernel_boot(&mut machine, device, view.kernel, boot_complete);
    bootup_engine::install_rcu_booster_control(&mut machine, view.boost_rcu, boot_complete);
    core_engine::install_module_loading(
        &mut machine,
        view.modules,
        device,
        view.module_strategy,
        boot_complete,
    );
    (machine, kernel, device)
}

/// The boot *suffix*: the init scheme and everything after it, resumed
/// on a machine that already completed [`execute_prefix`] (freshly, or
/// restored from a snapshot). Composing prefix + suffix replays the
/// exact machine-op order of the unsplit path, so boot timelines are
/// bit-identical.
pub(crate) fn execute_suffix(
    ir: &BootPlanIr<'_>,
    deltas: Vec<PassDelta>,
    machine: Machine,
    kernel: bb_kernel::KernelReport,
    device: bb_sim::DeviceId,
) -> (FullBootReport, Machine) {
    execute_suffix_view(SuffixView::of_ir(ir), deltas, machine, kernel, device)
}

/// Borrowed view of the plan pieces the suffix needs, constructible
/// from a fresh [`BootPlanIr`] or straight from a [`OwnedPlan`] — the
/// resume hot path goes through the latter so a fleet job never clones
/// the unit graph or task tables per boot.
pub(crate) struct SuffixView<'a> {
    cfg: BbConfig,
    graph: &'a UnitGraph,
    transaction: &'a Transaction,
    completion: &'a [UnitName],
    overrides: &'a PlanOverrides,
    init_tasks: &'a [ManagerTask],
    service_phase_tasks: &'a [ManagerTask],
    execution_order: &'a [usize],
    workloads: &'a WorkloadMap,
    load: LoadModel,
    manager_costs: ManagerCosts,
}

impl<'a> SuffixView<'a> {
    pub(crate) fn of_ir(ir: &'a BootPlanIr<'_>) -> Self {
        SuffixView {
            cfg: ir.cfg,
            graph: &ir.graph,
            transaction: &ir.transaction,
            completion: &ir.completion,
            overrides: &ir.overrides,
            init_tasks: &ir.init_tasks,
            service_phase_tasks: &ir.service_phase_tasks,
            execution_order: &ir.execution_order,
            workloads: ir.workloads,
            load: ir.load,
            manager_costs: ir.manager_costs,
        }
    }

    pub(crate) fn of_owned(plan: &'a OwnedPlan, scenario: &'a Scenario) -> Self {
        SuffixView {
            cfg: plan.cfg,
            graph: &plan.graph,
            transaction: &plan.transaction,
            completion: &plan.completion,
            overrides: &plan.overrides,
            init_tasks: &plan.init_tasks,
            service_phase_tasks: &plan.service_phase_tasks,
            execution_order: &plan.execution_order,
            workloads: &scenario.workloads,
            load: plan.load,
            manager_costs: plan.manager_costs,
        }
    }
}

pub(crate) fn execute_suffix_view(
    view: SuffixView<'_>,
    deltas: Vec<PassDelta>,
    mut machine: Machine,
    kernel: bb_kernel::KernelReport,
    device: bb_sim::DeviceId,
) -> (FullBootReport, Machine) {
    let bb_group: Vec<UnitName> = view
        .overrides
        .isolate
        .iter()
        .map(|&i| view.graph.unit(i).name.clone())
        .collect();
    let plan = BootPlan {
        graph: view.graph,
        transaction: view.transaction,
        completion: view.completion,
        overrides: view.overrides,
        init_tasks: view.init_tasks,
        service_phase_tasks: view.service_phase_tasks,
        execution_order: view.execution_order,
    };
    let engine_cfg = EngineConfig {
        mode: EngineMode::InOrder,
        load: view.load,
        costs: view.manager_costs,
        device,
    };
    let boot = run_boot(&mut machine, &plan, view.workloads, &engine_cfg);
    let quiesce_time = boot.outcome.end_time;
    let rcu = machine.rcu_stats();

    (
        FullBootReport {
            config: view.cfg,
            kernel,
            boot,
            rcu,
            bb_group,
            quiesce_time,
            deltas,
        },
        machine,
    )
}

/// An owned copy of everything a planned boot needs — the full prefix
/// (machine shape, storage, transformed kernel plan, module strategy,
/// RCU install flag) *and* the suffix (graph, transaction, overrides,
/// task tables, load model) — plus the pass deltas that produced it and
/// enough scenario identity to tell when it can be reused.
///
/// A [`crate::Checkpoint`] carries one behind an `Arc`: resuming under
/// the checkpoint's own configuration (the common case — a fleet fork
/// resumes the checkpointing config itself, and a suspend/resume cycle
/// never changes config) then skips [`Pipeline::plan`] entirely, which
/// is a double-digit share of a simulated boot's host cost. A
/// [`crate::PlanCache`] holds them too, so whole sweeps share one
/// compiled plan per (scenario, config). Planning is deterministic, so
/// the reused plan is the plan a fresh [`Pipeline::plan`] call would
/// have produced and the timeline stays bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct OwnedPlan {
    name: String,
    units_len: usize,
    scenario_machine_hash: u64,
    cfg: BbConfig,
    machine: MachineConfig,
    storage: DeviceProfile,
    kernel: KernelPlan,
    module_strategy: ModuleStrategy,
    boost_rcu: bool,
    graph: UnitGraph,
    transaction: Transaction,
    completion: Vec<UnitName>,
    overrides: PlanOverrides,
    init_tasks: Vec<ManagerTask>,
    service_phase_tasks: Vec<ManagerTask>,
    execution_order: Vec<usize>,
    load: LoadModel,
    manager_costs: ManagerCosts,
    deltas: Vec<PassDelta>,
}

impl OwnedPlan {
    /// Copies the owned parts of `ir` (freshly planned from `scenario`)
    /// and the pass deltas into a scenario-independent plan.
    pub(crate) fn capture(
        scenario: &Scenario,
        ir: &BootPlanIr<'_>,
        deltas: &[PassDelta],
    ) -> OwnedPlan {
        OwnedPlan {
            name: scenario.name.clone(),
            units_len: scenario.units.len(),
            scenario_machine_hash: bb_sim::snapshot::config_hash(&scenario.machine),
            cfg: ir.cfg,
            machine: ir.machine,
            storage: ir.storage,
            kernel: ir.kernel.clone(),
            module_strategy: ir.module_strategy,
            boost_rcu: ir.boost_rcu,
            graph: ir.graph.clone(),
            transaction: ir.transaction.clone(),
            completion: ir.completion.clone(),
            overrides: ir.overrides.clone(),
            init_tasks: ir.init_tasks.clone(),
            service_phase_tasks: ir.service_phase_tasks.clone(),
            execution_order: ir.execution_order.clone(),
            load: ir.load,
            manager_costs: ir.manager_costs,
            deltas: deltas.to_vec(),
        }
    }

    /// The pass deltas recorded when this plan was captured.
    pub(crate) fn deltas(&self) -> &[PassDelta] {
        &self.deltas
    }

    /// FNV-1a hash of the machine configuration the plan was built
    /// from (always the scenario's — no pass edits the machine shape).
    pub(crate) fn machine_hash(&self) -> u64 {
        self.scenario_machine_hash
    }

    /// Whether booting `scenario` under `cfg` can reuse this plan
    /// verbatim. Conservative: any mismatch (different config, renamed
    /// scenario, changed unit count or machine shape) sends the caller
    /// down the re-planning path, which performs the authoritative
    /// validation — reuse is purely an optimization, never a semantic
    /// fork.
    pub(crate) fn covers(&self, scenario: &Scenario, cfg: &BbConfig) -> bool {
        self.cfg == *cfg
            && self.name == scenario.name
            && self.units_len == scenario.units.len()
            && self.scenario_machine_hash == bb_sim::snapshot::config_hash(&scenario.machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::tests::mini_tv;
    use crate::booster::BootRequest;

    #[test]
    fn standard_pipeline_has_the_seven_passes_in_order() {
        let p = Pipeline::standard();
        let names: Vec<&str> = p.passes().map(|x| x.name()).collect();
        assert_eq!(names, STANDARD_PASSES);
    }

    #[test]
    fn conventional_config_enables_no_passes() {
        let p = Pipeline::standard();
        assert_eq!(p.enabled(&BbConfig::conventional()).count(), 0);
        assert_eq!(p.enabled(&BbConfig::full()).count(), 7);
    }

    #[test]
    fn config_for_round_trips_the_full_selection() {
        let p = Pipeline::standard();
        let all: Vec<&str> = STANDARD_PASSES.to_vec();
        assert_eq!(p.config_for(&all), Some(BbConfig::full()));
        assert_eq!(p.config_for(&[]), Some(BbConfig::conventional()));
        assert_eq!(p.config_for(&["no-such-pass"]), None);
    }

    #[test]
    fn enable_is_the_inverse_of_enabled() {
        let p = Pipeline::standard();
        for pass in p.passes() {
            let mut cfg = BbConfig::conventional();
            assert!(
                !pass.enabled(&cfg),
                "{} enabled on conventional",
                pass.name()
            );
            pass.enable(&mut cfg);
            assert!(
                pass.enabled(&cfg),
                "{} not enabled by its own enable()",
                pass.name()
            );
        }
    }

    #[test]
    fn full_bb_plan_records_seven_deltas_with_provenance() {
        let s = mini_tv();
        let p = Pipeline::standard();
        let (_, deltas) = p.plan(&s, &BbConfig::full(), None).unwrap();
        let names: Vec<&str> = deltas.iter().map(|d| d.pass).collect();
        assert_eq!(names, STANDARD_PASSES);
        for d in &deltas {
            assert!(
                !d.estimated_saving.is_zero(),
                "pass {} estimated no saving",
                d.pass
            );
            assert!(!d.summary().is_empty());
        }
    }

    #[test]
    fn conventional_plan_is_untransformed() {
        let s = mini_tv();
        let p = Pipeline::standard();
        let (ir, deltas) = p.plan(&s, &BbConfig::conventional(), None).unwrap();
        assert!(deltas.is_empty());
        assert!(!ir.kernel.defer_memory && !ir.kernel.defer_initcalls && !ir.kernel.defer_journal);
        assert!(ir.overrides.isolate.is_empty());
        assert!(ir.init_tasks.iter().all(|t| !t.deferred));
        assert!(!ir.boost_rcu);
    }

    #[test]
    fn pipeline_run_matches_boot_request() {
        let s = mini_tv();
        let p = Pipeline::standard();
        for cfg in [BbConfig::conventional(), BbConfig::full()] {
            let via_pipeline = p.run(&s, &cfg).unwrap();
            let via_facade = BootRequest::new(&s).config(cfg).run().unwrap().report;
            assert_eq!(
                via_pipeline.boot.completion_time,
                via_facade.boot.completion_time
            );
            assert_eq!(via_pipeline.quiesce_time, via_facade.quiesce_time);
        }
    }
}
