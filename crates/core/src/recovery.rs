//! Artifact integrity & recovery: the chain that keeps a device booting
//! when its boot-time caches go bad.
//!
//! The paper's deployment story leans on two persisted artifacts — the
//! Pre-parser's binary unit cache and (for suspend-to-RAM products) a
//! machine snapshot. Both live on flash that is written on every
//! firmware update and read on every boot, which is exactly where torn
//! writes, bit rot, and stale generations happen. A consumer device
//! cannot greet a corrupt cache with a panic or, worse, a plausible but
//! wrong boot; it must *detect* the damage (the artifacts carry
//! checksums and a content hash, see [`bb_init::preparse`] and
//! [`bb_sim::snapshot`]) and *recover* along a priced, reported path:
//!
//! * corrupt or stale pre-parse blob → discard it and re-parse the unit
//!   text at boot, paying the conventional load model on the simulated
//!   timeline — bit-identical to a boot that never had the cache;
//! * corrupt checkpoint/suspend image → discard it and cold-boot the
//!   scenario through the ordinary planning path;
//! * transient read failures → bounded retries with deterministic
//!   backoff accounting, then (if still unreadable) the same discard
//!   path.
//!
//! Every recovery is recorded as a [`RecoveryEvent`] on the resulting
//! [`Boot`], carrying the reason, the retry accounting, and a priced
//! cost delta, so fleet sweeps can aggregate recovery *rates* and
//! recovery *costs* instead of just counting weird boots.

use bb_init::{blob_content_hash, decode_units, unit_set_hash, LoadModel, Unit};
use bb_sim::{AccessPattern, CorruptionPlan, DeviceProfile, FaultPlan, SimDuration, SimTime};

use crate::booster::{Boot, BootRequest, Checkpoint, Scenario};
use crate::config::BbConfig;
use crate::error::Error;
use crate::fallback::{run_with_fallback, BootOutcome, FallbackPolicy};
use crate::service_engine::{ParseCostParams, PreParser};

/// How many times a transiently failing artifact read is retried before
/// the artifact is declared unreadable and discarded.
pub const MAX_ARTIFACT_RETRIES: u32 = 3;

/// Backoff before retry `attempt` (0-based): 500 µs doubling per
/// attempt. Deterministic by construction — the ledger is part of the
/// priced recovery cost, not the simulated timeline.
pub fn retry_backoff(attempt: u32) -> SimDuration {
    SimDuration::from_micros(500u64 << attempt.min(10))
}

/// Total backoff paid for `retries` retries.
pub fn retry_cost(retries: u32) -> SimDuration {
    let ns: u64 = (0..retries).map(|a| retry_backoff(a).as_nanos()).sum();
    SimDuration::from_nanos(ns)
}

/// Which persisted boot artifact a recovery concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// The Pre-parser's binary unit cache (see [`bb_init::preparse`]).
    PreparseBlob,
    /// A serialized machine snapshot (see [`bb_sim::snapshot`]):
    /// checkpoint or suspend-to-RAM image.
    SnapshotImage,
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactKind::PreparseBlob => write!(f, "pre-parse blob"),
            ArtifactKind::SnapshotImage => write!(f, "snapshot image"),
        }
    }
}

/// Why an artifact needed recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryReason {
    /// The artifact failed structural validation (checksum mismatch,
    /// truncation, bad magic, …). Carries the decoder's own error line.
    Corrupt {
        /// The structured decode error, rendered.
        detail: String,
    },
    /// The artifact decoded cleanly but was built from a different unit
    /// generation (e.g. a firmware update changed the unit set without
    /// rewriting the cache).
    Stale {
        /// Content hash stamped in the artifact.
        found: u64,
        /// Content hash of the scenario's current unit set.
        expected: u64,
    },
    /// Reads of the artifact failed transiently. If the failure count
    /// exceeds [`MAX_ARTIFACT_RETRIES`] the artifact is discarded;
    /// otherwise the retries succeeded and only their backoff is billed.
    TransientReads {
        /// How many reads failed before one succeeded (or retries ran
        /// out).
        failures: u32,
    },
}

impl std::fmt::Display for RecoveryReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryReason::Corrupt { detail } => write!(f, "corrupt: {detail}"),
            RecoveryReason::Stale { found, expected } => {
                write!(f, "stale generation: {found:#018x} != {expected:#018x}")
            }
            RecoveryReason::TransientReads { failures } => {
                write!(f, "{failures} transient read failure(s)")
            }
        }
    }
}

/// What the recovery chain did about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Transient read failures were retried within the bound and the
    /// artifact was used; only backoff time was billed.
    RetriedOk,
    /// The pre-parse blob was discarded; units were re-parsed from text
    /// on the boot timeline.
    Reparsed,
    /// The snapshot image was discarded; the scenario cold-booted.
    ColdBooted,
}

/// One recovery, with the reason and the priced accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Which artifact was affected.
    pub artifact: ArtifactKind,
    /// Why recovery was needed.
    pub reason: RecoveryReason,
    /// What the chain did.
    pub action: RecoveryAction,
    /// Transient-read retries paid before the verdict.
    pub retries: u32,
    /// Deterministic backoff time those retries burned.
    pub retry_cost: SimDuration,
    /// Priced cost of losing the artifact: the extra simulated time the
    /// degraded path costs over the artifact-backed one (zero for
    /// [`RecoveryAction::RetriedOk`]).
    pub cost_delta: SimDuration,
}

impl RecoveryEvent {
    pub(crate) fn transient_ok(
        artifact: ArtifactKind,
        retries: u32,
        retry_cost: SimDuration,
    ) -> Self {
        RecoveryEvent {
            artifact,
            reason: RecoveryReason::TransientReads { failures: retries },
            action: RecoveryAction::RetriedOk,
            retries,
            retry_cost,
            cost_delta: SimDuration::from_nanos(0),
        }
    }

    /// True if the artifact was discarded (as opposed to merely
    /// retried).
    pub fn rejected(&self) -> bool {
        !matches!(self.action, RecoveryAction::RetriedOk)
    }

    /// Total priced cost: retry backoff plus the degraded-path delta.
    pub fn total_cost(&self) -> SimDuration {
        SimDuration::from_nanos(self.retry_cost.as_nanos() + self.cost_delta.as_nanos())
    }

    /// Stable one-line rendering for reports.
    pub fn describe(&self) -> String {
        let action = match self.action {
            RecoveryAction::RetriedOk => "retried ok",
            RecoveryAction::Reparsed => "re-parsed units",
            RecoveryAction::ColdBooted => "cold-booted",
        };
        format!("{} {}: {}", self.artifact, action, self.reason)
    }
}

/// An artifact as it came back from boot storage: the bytes plus how
/// many reads failed transiently before one succeeded. This is the
/// injection point for corruption sweeps — apply a
/// [`CorruptionPlan`] to the encoded bytes and hand the result to
/// [`BootRequest::preparse_artifact`] or [`resume_or_cold_boot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRead {
    /// The artifact bytes as read (possibly damaged).
    pub bytes: Vec<u8>,
    /// Reads that failed before one succeeded. Values above
    /// [`MAX_ARTIFACT_RETRIES`] mean the artifact never became
    /// readable.
    pub transient_failures: u32,
}

impl ArtifactRead {
    /// A clean read: the bytes exactly as written, first try.
    pub fn clean(bytes: Vec<u8>) -> Self {
        ArtifactRead {
            bytes,
            transient_failures: 0,
        }
    }

    /// A read of bytes damaged by `plan` (the empty plan leaves them
    /// untouched).
    pub fn corrupted(mut bytes: Vec<u8>, plan: &CorruptionPlan) -> Self {
        plan.apply(&mut bytes);
        ArtifactRead {
            bytes,
            transient_failures: 0,
        }
    }

    /// Marks the read as transiently failing `failures` times.
    pub fn flaky(mut self, failures: u32) -> Self {
        self.transient_failures = failures;
        self
    }
}

/// Verdict of validating one artifact read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactVerdict {
    /// The artifact is usable. `retries`/`retry_cost` account for any
    /// transient read failures absorbed on the way.
    Accepted {
        /// Transient-read retries paid.
        retries: u32,
        /// Backoff time those retries burned.
        retry_cost: SimDuration,
    },
    /// The artifact must be discarded; the event says why and prices
    /// the recovery.
    Rejected(RecoveryEvent),
}

/// Estimated extra boot time of parsing unit text conventionally
/// instead of loading the pre-parse cache: the same load models the
/// planner prices, evaluated against the boot storage profile.
pub fn preparse_penalty(
    pre: &PreParser,
    params: &ParseCostParams,
    storage: &DeviceProfile,
) -> SimDuration {
    fn model_ns(model: &LoadModel, storage: &DeviceProfile) -> u64 {
        let bps = match model.pattern {
            AccessPattern::Sequential => storage.seq_read_bps,
            AccessPattern::Random => storage.rand_read_bps,
        };
        let io = model.io_bytes.saturating_mul(1_000_000_000) / bps.max(1)
            + storage.request_latency.as_nanos();
        model.cpu.as_nanos() + io
    }
    let conv = model_ns(&pre.load_model(params, false), storage);
    let cached = model_ns(&pre.load_model(params, true), storage);
    SimDuration::from_nanos(conv.saturating_sub(cached))
}

/// Validates a pre-parse blob read against the scenario's current unit
/// set: bounded transient-read retries, then container/CRC validation,
/// then the content-hash staleness check.
pub fn validate_preparse_blob(
    read: &ArtifactRead,
    units: &[Unit],
    pre: &PreParser,
    params: &ParseCostParams,
    storage: &DeviceProfile,
) -> ArtifactVerdict {
    let retries = read.transient_failures.min(MAX_ARTIFACT_RETRIES);
    let retry_cost = retry_cost(retries);
    let reject = |reason| {
        ArtifactVerdict::Rejected(RecoveryEvent {
            artifact: ArtifactKind::PreparseBlob,
            reason,
            action: RecoveryAction::Reparsed,
            retries,
            retry_cost,
            cost_delta: preparse_penalty(pre, params, storage),
        })
    };
    if read.transient_failures > MAX_ARTIFACT_RETRIES {
        return reject(RecoveryReason::TransientReads {
            failures: read.transient_failures,
        });
    }
    if let Err(e) = decode_units(&read.bytes) {
        return reject(RecoveryReason::Corrupt {
            detail: e.to_string(),
        });
    }
    let found = blob_content_hash(&read.bytes).expect("container was just validated");
    let expected = unit_set_hash(units);
    if found != expected {
        return reject(RecoveryReason::Stale { found, expected });
    }
    ArtifactVerdict::Accepted {
        retries,
        retry_cost,
    }
}

/// Resumes `checkpoint` with its image replaced by `read` (the bytes as
/// they came back from storage); a corrupt or unreadable image is
/// discarded and the scenario cold-boots instead, with a
/// [`RecoveryEvent`] recorded on the boot.
///
/// The cold boot's cost delta is priced as the kernel-phase time the
/// snapshot would have skipped (the prefix up to the kernel→init
/// handoff, re-simulated from scratch).
pub fn resume_or_cold_boot(
    scenario: &Scenario,
    cfg: BbConfig,
    checkpoint: &Checkpoint,
    read: &ArtifactRead,
) -> Result<Boot, Error> {
    let retries = read.transient_failures.min(MAX_ARTIFACT_RETRIES);
    let backoff = retry_cost(retries);
    if read.transient_failures > MAX_ARTIFACT_RETRIES {
        return cold_boot(
            scenario,
            cfg,
            RecoveryReason::TransientReads {
                failures: read.transient_failures,
            },
            retries,
            backoff,
        );
    }
    let attempt = checkpoint.with_image(read.bytes.clone());
    match BootRequest::new(scenario).config(cfg).resume(&attempt) {
        Ok(mut boot) => {
            if retries > 0 {
                boot.recoveries.push(RecoveryEvent::transient_ok(
                    ArtifactKind::SnapshotImage,
                    retries,
                    backoff,
                ));
            }
            Ok(boot)
        }
        Err(Error::Snapshot(e)) => cold_boot(
            scenario,
            cfg,
            RecoveryReason::Corrupt {
                detail: e.to_string(),
            },
            retries,
            backoff,
        ),
        Err(e) => Err(e),
    }
}

fn cold_boot(
    scenario: &Scenario,
    cfg: BbConfig,
    reason: RecoveryReason,
    retries: u32,
    retry_cost: SimDuration,
) -> Result<Boot, Error> {
    let mut boot = BootRequest::new(scenario).config(cfg).run()?;
    let cost_delta = boot.report.kernel.userspace_start.since(SimTime::ZERO);
    boot.recoveries.push(RecoveryEvent {
        artifact: ArtifactKind::SnapshotImage,
        reason,
        action: RecoveryAction::ColdBooted,
        retries,
        retry_cost,
        cost_delta,
    });
    Ok(boot)
}

/// [`run_with_fallback`] with an optional pre-parse artifact in front:
/// the sweep-facing entry the chaos grid's corruption axis uses.
///
/// The artifact is only consulted when `cfg` actually uses the
/// Pre-parser — a conventional boot never reads the cache, so damage to
/// it cannot affect that timeline. A rejected artifact flips the
/// Pre-parser off for this boot (the timeline of a device whose cache
/// was discarded) and the recovery is returned alongside the outcome.
pub fn run_with_fallback_recovering(
    scenario: &Scenario,
    cfg: &BbConfig,
    pre: Option<&PreParser>,
    artifact: Option<&ArtifactRead>,
    faults: &FaultPlan,
    policy: &FallbackPolicy,
) -> Result<(BootOutcome, Vec<RecoveryEvent>), Error> {
    let mut events = Vec::new();
    let mut cfg = *cfg;
    if cfg.preparser {
        if let Some(read) = artifact {
            let built;
            let pre = match pre {
                Some(p) => p,
                None => {
                    built = PreParser::build(&scenario.units);
                    &built
                }
            };
            match validate_preparse_blob(
                read,
                &scenario.units,
                pre,
                &scenario.parse_params,
                &scenario.storage,
            ) {
                ArtifactVerdict::Accepted { retries: 0, .. } => {}
                ArtifactVerdict::Accepted {
                    retries,
                    retry_cost,
                } => {
                    events.push(RecoveryEvent::transient_ok(
                        ArtifactKind::PreparseBlob,
                        retries,
                        retry_cost,
                    ));
                }
                ArtifactVerdict::Rejected(ev) => {
                    cfg.preparser = false;
                    events.push(ev);
                }
            }
        }
    }
    let outcome = run_with_fallback(scenario, &cfg, pre, faults, policy)?;
    Ok((outcome, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::booster::tests::mini_tv;
    use crate::booster::CheckpointPhase;
    use bb_init::encode_units;

    fn blob(s: &Scenario) -> Vec<u8> {
        encode_units(&s.units)
    }

    #[test]
    fn clean_artifact_is_accepted_silently() {
        let s = mini_tv();
        let pre = PreParser::build(&s.units);
        let read = ArtifactRead::clean(blob(&s));
        let v = validate_preparse_blob(&read, &s.units, &pre, &s.parse_params, &s.storage);
        assert_eq!(
            v,
            ArtifactVerdict::Accepted {
                retries: 0,
                retry_cost: SimDuration::from_nanos(0)
            }
        );
        let boot = BootRequest::new(&s).preparse_artifact(&read).run().unwrap();
        assert!(boot.recoveries.is_empty());
    }

    #[test]
    fn corrupt_blob_boots_like_a_boot_that_never_had_the_cache() {
        let s = mini_tv();
        let plan = CorruptionPlan::seeded(7);
        let read = ArtifactRead::corrupted(blob(&s), &plan);
        let recovered = BootRequest::new(&s).preparse_artifact(&read).run().unwrap();
        assert_eq!(recovered.recoveries.len(), 1);
        let ev = &recovered.recoveries[0];
        assert_eq!(ev.artifact, ArtifactKind::PreparseBlob);
        assert_eq!(ev.action, RecoveryAction::Reparsed);
        assert!(ev.rejected());
        assert!(ev.cost_delta.as_nanos() > 0, "recovery must be priced");

        // The acceptance property: the recovered timeline is
        // bit-identical to the same config with the Pre-parser off.
        let fresh = BootRequest::new(&s)
            .config(BbConfig {
                preparser: false,
                ..BbConfig::full()
            })
            .run()
            .unwrap();
        assert_eq!(
            recovered.report.boot.completion_time,
            fresh.report.boot.completion_time
        );
        assert_eq!(recovered.report.quiesce_time, fresh.report.quiesce_time);
    }

    #[test]
    fn stale_blob_is_rejected_with_both_hashes() {
        let mut other = mini_tv();
        other.units.pop();
        let s = mini_tv();
        let pre = PreParser::build(&s.units);
        // A valid blob from a *different* unit generation.
        let read = ArtifactRead::clean(blob(&other));
        let v = validate_preparse_blob(&read, &s.units, &pre, &s.parse_params, &s.storage);
        let ArtifactVerdict::Rejected(ev) = v else {
            panic!("stale blob must be rejected");
        };
        assert!(matches!(
            ev.reason,
            RecoveryReason::Stale { found, expected } if found != expected
        ));
    }

    #[test]
    fn transient_reads_within_the_bound_are_retried_and_billed() {
        let s = mini_tv();
        let read = ArtifactRead::clean(blob(&s)).flaky(2);
        let boot = BootRequest::new(&s).preparse_artifact(&read).run().unwrap();
        assert_eq!(boot.recoveries.len(), 1);
        let ev = &boot.recoveries[0];
        assert_eq!(ev.action, RecoveryAction::RetriedOk);
        assert!(!ev.rejected());
        assert_eq!(ev.retries, 2);
        assert_eq!(ev.retry_cost, retry_cost(2));
        assert_eq!(ev.cost_delta.as_nanos(), 0);
        // The artifact was still used: same timeline as a plain boot.
        let plain = BootRequest::new(&s).run().unwrap();
        assert_eq!(
            boot.report.boot.completion_time,
            plain.report.boot.completion_time
        );
    }

    #[test]
    fn exhausted_retries_discard_the_artifact() {
        let s = mini_tv();
        let read = ArtifactRead::clean(blob(&s)).flaky(MAX_ARTIFACT_RETRIES + 2);
        let boot = BootRequest::new(&s).preparse_artifact(&read).run().unwrap();
        assert_eq!(boot.recoveries.len(), 1);
        let ev = &boot.recoveries[0];
        assert_eq!(ev.action, RecoveryAction::Reparsed);
        assert!(matches!(
            ev.reason,
            RecoveryReason::TransientReads { failures } if failures == MAX_ARTIFACT_RETRIES + 2
        ));
        assert_eq!(ev.retries, MAX_ARTIFACT_RETRIES);
    }

    #[test]
    fn conventional_boots_never_consult_the_artifact() {
        let s = mini_tv();
        let read = ArtifactRead::corrupted(blob(&s), &CorruptionPlan::seeded(3));
        let boot = BootRequest::new(&s)
            .config(BbConfig::conventional())
            .preparse_artifact(&read)
            .run()
            .unwrap();
        assert!(boot.recoveries.is_empty());
    }

    #[test]
    fn corrupt_snapshot_image_cold_boots_with_a_priced_event() {
        let s = mini_tv();
        let cfg = BbConfig::full();
        let ckpt = BootRequest::new(&s)
            .config(cfg)
            .checkpoint_at(CheckpointPhase::KernelHandoff)
            .unwrap();

        // A pristine image resumes normally, no events.
        let clean = ArtifactRead::clean(ckpt.bytes().to_vec());
        let boot = resume_or_cold_boot(&s, cfg, &ckpt, &clean).unwrap();
        assert!(boot.recoveries.is_empty());
        let straight = BootRequest::new(&s).config(cfg).run().unwrap();
        assert_eq!(
            boot.report.boot.completion_time,
            straight.report.boot.completion_time
        );

        // A corrupted image is discarded; the cold boot matches the
        // uninterrupted run and carries a priced ColdBooted event.
        let read = ArtifactRead::corrupted(ckpt.bytes().to_vec(), &CorruptionPlan::seeded(11));
        let boot = resume_or_cold_boot(&s, cfg, &ckpt, &read).unwrap();
        assert_eq!(
            boot.report.boot.completion_time,
            straight.report.boot.completion_time
        );
        assert_eq!(boot.recoveries.len(), 1);
        let ev = &boot.recoveries[0];
        assert_eq!(ev.artifact, ArtifactKind::SnapshotImage);
        assert_eq!(ev.action, RecoveryAction::ColdBooted);
        assert!(matches!(ev.reason, RecoveryReason::Corrupt { .. }));
        assert_eq!(
            ev.cost_delta,
            boot.report.kernel.userspace_start.since(SimTime::ZERO)
        );
    }

    #[test]
    fn unreadable_snapshot_image_cold_boots_without_touching_bytes() {
        let s = mini_tv();
        let cfg = BbConfig::full();
        let ckpt = BootRequest::new(&s)
            .config(cfg)
            .checkpoint_at(CheckpointPhase::KernelHandoff)
            .unwrap();
        let read = ArtifactRead::clean(ckpt.bytes().to_vec()).flaky(MAX_ARTIFACT_RETRIES + 1);
        let boot = resume_or_cold_boot(&s, cfg, &ckpt, &read).unwrap();
        assert_eq!(boot.recoveries.len(), 1);
        assert!(matches!(
            boot.recoveries[0].reason,
            RecoveryReason::TransientReads { failures: 4 }
        ));
        assert_eq!(boot.recoveries[0].action, RecoveryAction::ColdBooted);
    }

    #[test]
    fn fallback_recovering_flips_preparser_only_for_bb_shapes() {
        let s = mini_tv();
        let read = ArtifactRead::corrupted(blob(&s), &CorruptionPlan::seeded(5));
        let policy = FallbackPolicy::default();
        let (out, events) = run_with_fallback_recovering(
            &s,
            &BbConfig::full(),
            None,
            Some(&read),
            &FaultPlan::none(),
            &policy,
        )
        .unwrap();
        assert!(!out.is_degraded());
        assert_eq!(events.len(), 1);
        assert!(events[0].rejected());

        let (_, conv_events) = run_with_fallback_recovering(
            &s,
            &BbConfig::conventional(),
            None,
            Some(&read),
            &FaultPlan::none(),
            &policy,
        )
        .unwrap();
        assert!(conv_events.is_empty(), "conventional boots skip the cache");
    }

    #[test]
    fn backoff_ledger_is_deterministic_and_bounded() {
        assert_eq!(retry_backoff(0), SimDuration::from_micros(500));
        assert_eq!(retry_backoff(1), SimDuration::from_micros(1000));
        assert_eq!(retry_backoff(2), SimDuration::from_micros(2000));
        assert_eq!(retry_cost(3), SimDuration::from_micros(500 + 1000 + 2000));
        assert_eq!(retry_cost(0), SimDuration::from_nanos(0));
    }
}
