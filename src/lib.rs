//! # booting-booster — reproduction of "BB: Booting Booster for
//! Consumer Electronics with Modern OS" (EuroSys 2016)
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — deterministic discrete-event machine simulator
//!   (cores, storage, flags, RCU waiter modes).
//! * [`kernel`] — simulated kernel boot (memory init, initcalls,
//!   modules, rootfs) plus the §2 background models.
//! * [`rcu`] — a *real* user-space RCU with the paper's classic
//!   ticket-spin and boosted blocking `synchronize_rcu` paths.
//! * [`init`] — a systemd-like init scheme: unit files, dependency
//!   graph, transactions, three job engines, bootchart rendering.
//! * [`bb`] — the Booting Booster itself: Core Engine, Boot-up Engine,
//!   Service Engine, and the single-entry [`bb::BootRequest`] boot API
//!   with telemetry and the critical-path profiler.
//! * [`workloads`] — machine profiles, the synthetic Tizen TV service
//!   graph, and calibrated scenarios.
//! * [`fleet`] — the fleet work-queue service and sweep engine:
//!   expands a {seed × params × profile × config} grid into jobs,
//!   executes them on a persistent [`fleet::FleetService`] with
//!   panic/deadline isolation, and streams results into a
//!   deterministic aggregated report (byte-identical for any worker
//!   count, cache state, or client interleaving).
//! * [`serve`] — the `bbsim serve` layer: the `bb-serve-v1` NDJSON
//!   wire protocol, the socket server in front of one fleet service,
//!   and the submitting client.
//!
//! # Quickstart
//!
//! ```
//! use booting_booster::bb::{BbConfig, BootRequest};
//! use booting_booster::workloads::camera_scenario;
//!
//! let scenario = camera_scenario();
//! let conventional = BootRequest::new(&scenario)
//!     .config(BbConfig::conventional())
//!     .run()
//!     .unwrap();
//! let boosted = BootRequest::new(&scenario).run().unwrap();
//! assert!(boosted.report.boot_time() < conventional.report.boot_time());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment map.

pub use bb_core as bb;
pub use bb_fleet as fleet;
pub use bb_init as init;
pub use bb_kernel as kernel;
pub use bb_rcu as rcu;
pub use bb_serve as serve;
pub use bb_sim as sim;
pub use bb_workloads as workloads;
