//! `bbsim` — boot-simulation CLI.
//!
//! Boots a scenario under a chosen Booting Booster configuration and
//! prints the timeline; optionally writes a bootchart SVG and the
//! dependency graph.
//!
//! ```text
//! bbsim [--scenario tv|tv136|camera] [--units DIR --target T --completion U]
//!       [--features all|none|LIST] [--services N] [--cores N] [--compare]
//!       [--chart FILE.svg] [--dot FILE.dot] [--trace FILE.json] [--blame N]
//! ```
//!
//! With `--units DIR`, your own systemd unit files are parsed and booted
//! with synthesized workload bodies (structure exploration, not absolute
//! timing); `--target` defaults to `boot.target` and `--completion` to
//! the target's first strong requirement.
//!
//! `LIST` is a comma-separated subset of: rcu-booster, defer-memory,
//! modularizer, defer-journal, deferred-executor, preparser, bb-group.

use std::process::exit;

use booting_booster::bb::{boost_with_machine, BbConfig, Comparison};
use booting_booster::init::{blame, parse_unit_dir, time_summary, Bootchart, UnitGraph, UnitName};
use booting_booster::workloads::{
    camera_scenario, custom_scenario, profiles, tv_scenario, tv_scenario_open_source,
    tv_scenario_with, TizenParams,
};

struct Args {
    scenario: String,
    units_dir: Option<String>,
    target: String,
    completion: Option<String>,
    features: String,
    services: Option<usize>,
    cores: Option<usize>,
    compare: bool,
    chart: Option<String>,
    dot: Option<String>,
    trace: Option<String>,
    blame: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: bbsim [--scenario tv|tv136|camera] [--features all|none|LIST]\n\
         \u{20}            [--services N] [--cores N] [--compare]\n\
         \u{20}            [--chart FILE.svg] [--dot FILE.dot] [--blame N]\n\
         LIST: comma-separated of rcu-booster,defer-memory,modularizer,\n\
         \u{20}     defer-journal,deferred-executor,preparser,bb-group"
    );
    exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: "tv".into(),
        units_dir: None,
        target: "boot.target".into(),
        completion: None,
        features: "all".into(),
        services: None,
        cores: None,
        compare: false,
        chart: None,
        dot: None,
        trace: None,
        blame: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario"),
            "--units" => args.units_dir = Some(value("--units")),
            "--target" => args.target = value("--target"),
            "--completion" => args.completion = Some(value("--completion")),
            "--features" => args.features = value("--features"),
            "--services" => {
                args.services = Some(value("--services").parse().unwrap_or_else(|_| usage()))
            }
            "--cores" => args.cores = Some(value("--cores").parse().unwrap_or_else(|_| usage())),
            "--compare" => args.compare = true,
            "--chart" => args.chart = Some(value("--chart")),
            "--dot" => args.dot = Some(value("--dot")),
            "--trace" => args.trace = Some(value("--trace")),
            "--blame" => args.blame = value("--blame").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_features(spec: &str) -> BbConfig {
    match spec {
        "all" | "full" => return BbConfig::full(),
        "none" | "conventional" => return BbConfig::conventional(),
        _ => {}
    }
    let mut cfg = BbConfig::conventional();
    for feature in spec.split(',') {
        match feature.trim() {
            "rcu-booster" => cfg.rcu_booster = true,
            "defer-memory" => cfg.defer_memory = true,
            "modularizer" => cfg.ondemand_modularizer = true,
            "defer-journal" => cfg.defer_journal = true,
            "deferred-executor" => cfg.deferred_executor = true,
            "preparser" => cfg.preparser = true,
            "bb-group" => cfg.bb_group = true,
            other => {
                eprintln!("unknown feature {other:?}");
                usage()
            }
        }
    }
    cfg
}

fn build_scenario(args: &Args) -> booting_booster::bb::Scenario {
    if let Some(dir) = &args.units_dir {
        let units = parse_unit_dir(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        let graph = UnitGraph::build(units.clone()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        // Completion: explicit flag, or the target's first strong
        // requirement.
        let completion = match &args.completion {
            Some(c) => UnitName::parse(c).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            }),
            None => {
                let Some(target_idx) = graph.idx(&UnitName::new(&args.target)) else {
                    eprintln!("error: target {} not found in the unit directory", args.target);
                    exit(1);
                };
                // Prefer the target's own strong requirement; fall back
                // to anything it pulls in.
                let mut edges: Vec<_> = graph.requirement_edges(target_idx).collect();
                edges.sort_by_key(|e| {
                    (e.kind != booting_booster::init::EdgeKind::RequiresStrong, e.src)
                });
                edges
                    .first()
                    .map(|e| graph.unit(e.src).name.clone())
                    .unwrap_or_else(|| {
                        eprintln!("error: {} has no requirements; pass --completion", args.target);
                        exit(1);
                    })
            }
        };
        let mut profile = profiles::ue48h6200();
        if let Some(cores) = args.cores {
            profile.machine.cores = cores;
        }
        return custom_scenario(profile, units, &args.target, vec![completion]);
    }
    let mut scenario = match args.scenario.as_str() {
        "tv" => tv_scenario(),
        "tv136" => tv_scenario_open_source(),
        "camera" => camera_scenario(),
        other => {
            eprintln!("unknown scenario {other:?}");
            usage()
        }
    };
    if let Some(services) = args.services {
        if services < 24 {
            eprintln!("error: --services must be at least 24 (the TV backbone alone needs that)");
            exit(2);
        }
        let mut profile = profiles::ue48h6200();
        if let Some(cores) = args.cores {
            profile.machine.cores = cores;
        }
        scenario = tv_scenario_with(
            profile,
            TizenParams {
                services,
                ..TizenParams::default()
            },
        );
    } else if let Some(cores) = args.cores {
        scenario.machine.cores = cores;
    }
    scenario
}

fn main() {
    let args = parse_args();
    let scenario = build_scenario(&args);
    let cfg = parse_features(&args.features);

    println!(
        "scenario {} | {} units | {} cores | features: {}/7",
        scenario.name,
        scenario.units.len(),
        scenario.machine.cores,
        cfg.active_features()
    );

    let (report, machine) = match boost_with_machine(&scenario, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("boot failed: {e}");
            exit(1);
        }
    };
    match report.boot.completion_time {
        Some(t) => println!("boot completed at {:.3} s", t.as_secs_f64()),
        None => println!("boot did NOT complete (blocked: {})", report.boot.outcome.blocked.len()),
    }
    println!("{}", time_summary(&report.boot));
    println!(
        "kernel {} | init {} | load {} | quiesce {:.3} s",
        report.kernel.kernel_total(),
        report.boot.init_done.since(report.boot.userspace_start),
        report.boot.load_done.since(report.boot.init_done),
        report.quiesce_time.as_secs_f64()
    );
    if !report.bb_group.is_empty() {
        let names: Vec<&str> = report.bb_group.iter().map(|n| n.as_str()).collect();
        println!("BB group: {}", names.join(", "));
    }

    if args.compare {
        let (conv, _) = boost_with_machine(&scenario, &BbConfig::conventional())
            .expect("conventional boots");
        println!("\n{}", Comparison::build(&conv, &report).to_table());
    }
    if args.blame > 0 {
        println!("\nslowest services by activation time:");
        for (name, d) in blame(&report.boot).into_iter().take(args.blame) {
            println!("  {d:>12} {name}");
        }
    }
    if let Some(path) = &args.chart {
        let chart = Bootchart::build(&report.boot, &machine);
        std::fs::write(path, chart.to_svg()).expect("write chart");
        println!("bootchart written to {path}");
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, booting_booster::sim::chrome_trace(&machine)).expect("write trace");
        println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = &args.dot {
        let graph = UnitGraph::build(scenario.units.clone()).expect("valid units");
        let group = booting_booster::bb::identify_bb_group(&graph, &scenario.completion);
        std::fs::write(path, graph.to_dot(Some(&group))).expect("write dot");
        println!("dependency graph written to {path}");
    }
}
