//! `bbsim` — boot-simulation CLI.
//!
//! Boots a scenario under a chosen Booting Booster configuration and
//! prints the timeline; optionally writes a bootchart SVG and the
//! dependency graph. The `sweep` subcommand runs a parallel seed sweep
//! on the bb-fleet work-stealing pool instead of a single boot.
//!
//! ```text
//! bbsim [--scenario tv|tv136|camera] [--units DIR --target T --completion U]
//!       [--features all|none|LIST] [--services N] [--cores N] [--seed N]
//!       [--compare] [--explain] [--json] [--profile] [--metrics]
//!       [--chart FILE.svg] [--dot FILE.dot] [--trace FILE.json] [--blame N]
//!
//! bbsim sweep [--profiles NAMES|all] [--services N] [--seeds N] [--seed N]
//!             [--features all|none|LIST] [--workers N] [--deadline-ms N]
//!             [--fork-from kernel-handoff] [--no-dedup] [--json FILE|-]
//!             [--metrics FILE|-] [--baseline FILE] [--tolerance PCT]
//!
//! bbsim suspend [--scenario tv|tv136|camera] [--services N] [--cores N]
//!               [--seed N] [--json]
//!
//! bbsim chaos [--profiles NAMES|all] [--services N] [--seeds N] [--seed N]
//!             [--plans N] [--plan-seed N] [--corruption N]
//!             [--corruption-seed N] [--workers N] [--deadline-ms N]
//!             [--restart no|on-failure|always] [--restart-sec-ms N]
//!             [--burst N] [--json FILE|-]
//! ```
//!
//! With `--units DIR`, your own systemd unit files are parsed and booted
//! with synthesized workload bodies (structure exploration, not absolute
//! timing); `--target` defaults to `boot.target` and `--completion` to
//! the target's first strong requirement. Parsed-but-unsupported
//! directives (e.g. `Restart=`) are reported on stderr.
//!
//! `--explain` prints the resolved pass pipeline (which passes ran and
//! which were skipped) plus the per-pass `PassDelta` attribution
//! table; with `--json` the same deltas appear under `"passes"`.
//!
//! `--profile` prints the critical-path table (the longest blocking
//! chain from power-on to the completion unit, with per-edge slack);
//! combined with `--json` it emits a `bb-profile-v1` document instead
//! of the boot report. `--metrics` boots with machine telemetry enabled
//! and prints the counter/histogram snapshot (`bb-metrics-v1` with
//! `--json`). On `sweep`, `--metrics FILE|-` aggregates per-span
//! durations across the whole sweep into a `bb-metrics-v1` document
//! (byte-identical for any `--workers` value).
//!
//! `LIST` is a comma-separated subset of: rcu-booster, defer-memory,
//! modularizer, defer-journal, deferred-executor, preparser, bb-group.
//!
//! `sweep --fork-from kernel-handoff` forks each job's boots from a
//! shared kernel checkpoint ([`bb_core::Checkpoint`]): the boot prefix
//! is simulated once per distinct prefix key and every config resumes
//! from the saved snapshot. Output is byte-identical to the unforked
//! sweep; the pool summary shows how many kernel simulations ran.
//!
//! `sweep` deduplicates identical grid points by default: two boots
//! with the same (scenario content × seed × config) are simulated once
//! and the deterministic result is fanned out, with compiled boot plans
//! shared through a [`bb_core::PlanCache`]. Output stays byte-identical
//! (the pool summary shows dedup and plan-cache counts); `--no-dedup`
//! forces every grid point to re-simulate.
//!
//! `suspend` compares the three power paths of §2.1 on one scenario: it
//! boots the conventional and full-BB shapes, snapshots the booted
//! machine ([`bb_sim::snapshot`] — the stand-in for the suspended RAM
//! image), restores it, and executes the suspend-to-RAM resume sequence
//! on the restored machine. `--json` emits a `bb-snapshot-v1` document.
//!
//! `chaos` grids `{seed × fault-plan × corruption × config}`: every
//! boot runs under the supervised BB→conventional fallback with
//! `--plans` seeded fault plans (plus the fault-free control plan),
//! `Restart=` armed on every service, and the aggregate reports
//! recovery rate, restart counts, degraded-boot rate, and
//! boot-time-under-fault percentiles. `--corruption N` adds N seeded
//! [`bb_sim::CorruptionPlan`]s (plus the pristine control) that damage
//! each scenario's pre-parse blob and drive the boot through the
//! artifact integrity chain ([`bb_core::recovery`]); per-config stats
//! then include artifact rejection rates and recovery-cost
//! percentiles. Output is deterministic: the same seeds give
//! byte-identical `--json` for any `--workers` value.

use std::process::exit;

use booting_booster::bb::FallbackPolicy;
use booting_booster::bb::{
    analyze_directives, attribution_table, metrics_snapshot, profile, BbConfig, BootRequest,
    Comparison, Pipeline,
};
use booting_booster::fleet::{
    json, run_chaos, run_sweep, CellSpec, ChaosCellSpec, ChaosSpec, DiffVerdict, PoolConfig,
    Supervision, SweepSpec,
};
use booting_booster::init::{
    blame, parse_unit_dir_with_warnings, time_summary, Bootchart, RestartPolicy, UnitGraph,
    UnitName,
};
use booting_booster::workloads::{
    camera_scenario, custom_scenario, profiles, tv_scenario, tv_scenario_open_source,
    tv_scenario_with, MachineProfile, TizenParams,
};

struct Args {
    scenario: String,
    units_dir: Option<String>,
    target: String,
    completion: Option<String>,
    features: String,
    services: Option<usize>,
    cores: Option<usize>,
    seed: Option<u64>,
    compare: bool,
    explain: bool,
    json: bool,
    profile: bool,
    metrics: bool,
    chart: Option<String>,
    dot: Option<String>,
    trace: Option<String>,
    blame: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: bbsim [--scenario tv|tv136|camera] [--features all|none|LIST]\n\
         \u{20}            [--services N] [--cores N] [--seed N] [--compare] [--explain]\n\
         \u{20}            [--json] [--profile] [--metrics] [--chart FILE.svg]\n\
         \u{20}            [--dot FILE.dot] [--blame N]\n\
         \u{20}      bbsim sweep [--profiles NAMES|all] [--services N] [--seeds N]\n\
         \u{20}            [--seed N] [--features LIST] [--workers N] [--deadline-ms N]\n\
         \u{20}            [--fork-from kernel-handoff] [--no-dedup] [--json FILE|-]\n\
         \u{20}            [--metrics FILE|-] [--baseline FILE] [--tolerance PCT]\n\
         \u{20}      bbsim suspend [--scenario tv|tv136|camera] [--services N]\n\
         \u{20}            [--cores N] [--seed N] [--json]\n\
         \u{20}      bbsim chaos [--profiles NAMES|all] [--services N] [--seeds N]\n\
         \u{20}            [--seed N] [--plans N] [--plan-seed N] [--corruption N]\n\
         \u{20}            [--corruption-seed N] [--workers N] [--deadline-ms N]\n\
         \u{20}            [--restart no|on-failure|always] [--restart-sec-ms N]\n\
         \u{20}            [--burst N] [--json FILE|-]\n\
         LIST: comma-separated of rcu-booster,defer-memory,modularizer,\n\
         \u{20}     defer-journal,deferred-executor,preparser,bb-group"
    );
    exit(2)
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        scenario: "tv".into(),
        units_dir: None,
        target: "boot.target".into(),
        completion: None,
        features: "all".into(),
        services: None,
        cores: None,
        seed: None,
        compare: false,
        explain: false,
        json: false,
        profile: false,
        metrics: false,
        chart: None,
        dot: None,
        trace: None,
        blame: 0,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario"),
            "--units" => args.units_dir = Some(value("--units")),
            "--target" => args.target = value("--target"),
            "--completion" => args.completion = Some(value("--completion")),
            "--features" => args.features = value("--features"),
            "--services" => {
                args.services = Some(value("--services").parse().unwrap_or_else(|_| usage()))
            }
            "--cores" => args.cores = Some(value("--cores").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--compare" => args.compare = true,
            "--explain" => args.explain = true,
            "--json" => args.json = true,
            "--profile" => args.profile = true,
            "--metrics" => args.metrics = true,
            "--chart" => args.chart = Some(value("--chart")),
            "--dot" => args.dot = Some(value("--dot")),
            "--trace" => args.trace = Some(value("--trace")),
            "--blame" => args.blame = value("--blame").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_features(spec: &str) -> BbConfig {
    match spec {
        "all" | "full" => return BbConfig::full(),
        "none" | "conventional" => return BbConfig::conventional(),
        _ => {}
    }
    let mut cfg = BbConfig::conventional();
    for feature in spec.split(',') {
        match feature.trim() {
            "rcu-booster" => cfg.rcu_booster = true,
            "defer-memory" => cfg.defer_memory = true,
            "modularizer" => cfg.ondemand_modularizer = true,
            "defer-journal" => cfg.defer_journal = true,
            "deferred-executor" => cfg.deferred_executor = true,
            "preparser" => cfg.preparser = true,
            "bb-group" => cfg.bb_group = true,
            other => {
                eprintln!("unknown feature {other:?}");
                usage()
            }
        }
    }
    cfg
}

fn build_scenario(args: &Args) -> booting_booster::bb::Scenario {
    if let Some(dir) = &args.units_dir {
        if args.seed.is_some() {
            eprintln!("error: --seed only applies to generated tv scenarios, not --units");
            exit(2);
        }
        let (units, warnings) = parse_unit_dir_with_warnings(std::path::Path::new(dir))
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            });
        // ServiceAnalyzer lint: surface directives the parser accepted
        // but the simulation drops, instead of swallowing them.
        for finding in analyze_directives(&warnings) {
            eprintln!("warning: {finding}");
        }
        let graph = UnitGraph::build(units.clone()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        // Completion: explicit flag, or the target's first strong
        // requirement.
        let completion = match &args.completion {
            Some(c) => UnitName::parse(c).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            }),
            None => {
                let Some(target_idx) = graph.idx(&UnitName::new(&args.target)) else {
                    eprintln!(
                        "error: target {} not found in the unit directory",
                        args.target
                    );
                    exit(1);
                };
                // Prefer the target's own strong requirement; fall back
                // to anything it pulls in.
                let mut edges: Vec<_> = graph.requirement_edges(target_idx).collect();
                edges.sort_by_key(|e| {
                    (
                        e.kind != booting_booster::init::EdgeKind::RequiresStrong,
                        e.src,
                    )
                });
                edges
                    .first()
                    .map(|e| graph.unit(e.src).name.clone())
                    .unwrap_or_else(|| {
                        eprintln!(
                            "error: {} has no requirements; pass --completion",
                            args.target
                        );
                        exit(1);
                    })
            }
        };
        let mut profile = profiles::ue48h6200();
        if let Some(cores) = args.cores {
            profile.machine.cores = cores;
        }
        return custom_scenario(profile, units, &args.target, vec![completion]);
    }
    let base_params = match args.scenario.as_str() {
        "tv" => TizenParams::commercial(),
        "tv136" => TizenParams::open_source(),
        "camera" => {
            if args.seed.is_some() || args.services.is_some() {
                eprintln!("error: --seed/--services only apply to tv scenarios");
                exit(2);
            }
            let mut scenario = camera_scenario();
            if let Some(cores) = args.cores {
                scenario.machine.cores = cores;
            }
            return scenario;
        }
        other => {
            eprintln!("unknown scenario {other:?}");
            usage()
        }
    };
    if args.services.is_none() && args.seed.is_none() {
        let mut scenario = match args.scenario.as_str() {
            "tv" => tv_scenario(),
            _ => tv_scenario_open_source(),
        };
        if let Some(cores) = args.cores {
            scenario.machine.cores = cores;
        }
        return scenario;
    }
    let services = args.services.unwrap_or(base_params.services);
    if services < 24 {
        eprintln!("error: --services must be at least 24 (the TV backbone alone needs that)");
        exit(2);
    }
    let mut profile = profiles::ue48h6200();
    if let Some(cores) = args.cores {
        profile.machine.cores = cores;
    }
    tv_scenario_with(
        profile,
        TizenParams {
            services,
            seed: args.seed.unwrap_or(base_params.seed),
            ..base_params
        },
    )
}

fn boot_json(
    scenario: &booting_booster::bb::Scenario,
    cfg: &BbConfig,
    report: &booting_booster::bb::FullBootReport,
    conventional: Option<&booting_booster::bb::FullBootReport>,
    seed: Option<u64>,
) -> String {
    // Same auditable-codec policy and `{:.3}` ms formatting as the
    // fleet sweep JSON, so single boots diff cleanly against cells.
    let mut out = json::open_document(json::SCHEMA_BOOT);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    if let Some(seed) = seed {
        out.push_str(&format!("  \"seed\": {seed},\n"));
    }
    out.push_str(&format!(
        "  \"units\": {}, \"cores\": {}, \"features\": {},\n",
        scenario.units.len(),
        scenario.machine.cores,
        cfg.active_features()
    ));
    let completed = report.boot.completion_time.is_some();
    out.push_str(&format!("  \"completed\": {completed},\n"));
    if completed {
        out.push_str(&format!(
            "  \"boot_ms\": {},\n",
            json::ms(report.boot_time().as_nanos() as f64)
        ));
    }
    out.push_str(&format!(
        "  \"kernel_ms\": {}, \"init_ms\": {}, \"load_ms\": {}, \"quiesce_ms\": {}",
        json::ms(report.kernel.kernel_total().as_nanos() as f64),
        json::ms(
            report
                .boot
                .init_done
                .since(report.boot.userspace_start)
                .as_nanos() as f64
        ),
        json::ms(
            report
                .boot
                .load_done
                .since(report.boot.init_done)
                .as_nanos() as f64
        ),
        json::ms(report.quiesce_time.as_nanos() as f64),
    ));
    out.push_str(",\n  \"passes\": [");
    for (i, d) in report.deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"estimated_saving_ms\": {}, \
             \"initcalls_deferred\": {}, \"modules_deferred\": {}, \
             \"tasks_deferred\": {}, \"edges_stripped\": {}, \
             \"units_touched\": {}, \"io_bytes_shifted\": {}}}",
            json::escape(d.pass),
            json::ms(d.estimated_saving.as_nanos() as f64),
            d.initcalls_deferred,
            d.modules_deferred,
            d.tasks_deferred,
            d.edges_stripped,
            d.units_touched,
            d.io_bytes_shifted,
        ));
    }
    if report.deltas.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    if !report.bb_group.is_empty() {
        out.push_str(",\n  \"bb_group\": [");
        for (i, name) in report.bb_group.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json::escape(name.as_str())));
        }
        out.push(']');
    }
    if let Some(conv) = conventional {
        if let (Some(c), Some(b)) = (conv.boot.completion_time, report.boot.completion_time) {
            let conv_ns = c.as_nanos() as f64;
            let boosted_ns = b.as_nanos() as f64;
            out.push_str(&format!(
                ",\n  \"conventional_ms\": {}, \"saving_ms\": {}, \"saving_pct\": {:.3}",
                json::ms(conv_ns),
                json::ms(conv_ns - boosted_ns),
                100.0 * (1.0 - boosted_ns / conv_ns)
            ));
        }
    }
    out.push_str("\n}\n");
    out
}

fn profile_json(
    scenario: &booting_booster::bb::Scenario,
    report: &booting_booster::bb::FullBootReport,
    prof: &booting_booster::bb::BootProfile,
) -> String {
    let mut out = json::open_document(json::SCHEMA_PROFILE);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    out.push_str(&format!(
        "  \"boot_ms\": {},\n",
        json::ms(report.boot_time().as_nanos() as f64)
    ));
    out.push_str("  \"critical_path\": ");
    match &prof.critical_path {
        None => out.push_str("null"),
        Some(cp) => {
            out.push_str(&format!(
                "{{\n    \"total_ms\": {},\n    \"steps\": [",
                json::ms(cp.total.as_nanos() as f64)
            ));
            for (i, step) in cp.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let slack = match step.slack {
                    None => "null".to_string(),
                    Some(d) => json::ms(d.as_nanos() as f64),
                };
                out.push_str(&format!(
                    "\n      {{\"span\": \"{}\", \"start_ms\": {}, \"end_ms\": {}, \
                     \"duration_ms\": {}, \"slack_ms\": {}}}",
                    json::escape(&step.name),
                    json::ms(step.start.as_nanos() as f64),
                    json::ms(step.end.as_nanos() as f64),
                    json::ms(step.duration().as_nanos() as f64),
                    slack,
                ));
            }
            if !cp.steps.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]\n  }");
        }
    }
    out.push_str(",\n  \"spans\": [");
    for (i, s) in prof.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"start_ms\": {}, \"end_ms\": {}}}",
            json::escape(&s.name),
            json::ms(s.start.as_nanos() as f64),
            json::ms(s.end.as_nanos() as f64),
        ));
    }
    if !prof.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn metrics_json(
    scenario: &booting_booster::bb::Scenario,
    snap: &booting_booster::bb::MetricsSnapshot,
) -> String {
    let mut out = json::open_document(json::SCHEMA_METRICS);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", json::escape(name), value));
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json::escape(name),
            h.count,
            h.min,
            h.max,
            h.mean,
            h.p50,
            h.p95,
            h.p99,
        ));
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

fn run_boot(args: Args) {
    let scenario = build_scenario(&args);
    let cfg = parse_features(&args.features);

    if !args.json {
        println!(
            "scenario {} | {} units | {} cores | features: {}/7",
            scenario.name,
            scenario.units.len(),
            scenario.machine.cores,
            cfg.active_features()
        );
    }

    let boot = match BootRequest::new(&scenario)
        .config(cfg)
        .telemetry(args.metrics)
        .run()
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("boot failed: {e}");
            exit(1);
        }
    };
    let (report, machine) = (boot.report, boot.machine);
    let conventional = if args.compare || args.json {
        Some(
            BootRequest::new(&scenario)
                .config(BbConfig::conventional())
                .run()
                .expect("conventional boots")
                .report,
        )
    } else {
        None
    };
    let prof = if args.profile {
        match profile(&scenario, &report, Some(&machine)) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("profile failed: {e}");
                exit(1);
            }
        }
    } else {
        None
    };

    if args.json {
        // --profile/--metrics switch the document; a plain --json boot
        // report stays byte-identical to what it always was.
        if let Some(prof) = &prof {
            print!("{}", profile_json(&scenario, &report, prof));
        } else if args.metrics {
            print!(
                "{}",
                metrics_json(&scenario, &metrics_snapshot(&report, &machine))
            );
        } else {
            print!(
                "{}",
                boot_json(&scenario, &cfg, &report, conventional.as_ref(), args.seed)
            );
        }
    } else {
        match report.boot.completion_time {
            Some(t) => println!("boot completed at {:.3} s", t.as_secs_f64()),
            None => {
                println!(
                    "boot did NOT complete (blocked: {})",
                    report.boot.outcome.blocked.len()
                )
            }
        }
        println!("{}", time_summary(&report.boot));
        println!(
            "kernel {} | init {} | load {} | quiesce {:.3} s",
            report.kernel.kernel_total(),
            report.boot.init_done.since(report.boot.userspace_start),
            report.boot.load_done.since(report.boot.init_done),
            report.quiesce_time.as_secs_f64()
        );
        if !report.bb_group.is_empty() {
            let names: Vec<&str> = report.bb_group.iter().map(|n| n.as_str()).collect();
            println!("BB group: {}", names.join(", "));
        }
        if let Some(conv) = &conventional {
            println!("\n{}", Comparison::build(conv, &report).to_table());
        }
        if args.explain {
            println!("\npass pipeline (features: {}/7):", cfg.active_features());
            for pass in Pipeline::standard().passes() {
                let state = if pass.enabled(&cfg) { "run " } else { "skip" };
                println!("  [{state}] {}", pass.name());
            }
            if !report.deltas.is_empty() {
                println!("\n{}", attribution_table(&report.deltas));
            }
        }
        if let Some(prof) = &prof {
            match &prof.critical_path {
                Some(cp) => println!("\n{}", cp.render()),
                None => println!("\n(no critical path: boot never completed)"),
            }
        }
        if args.metrics {
            let snap = metrics_snapshot(&report, &machine);
            println!("\ntelemetry counters:");
            for (name, value) in &snap.counters {
                println!("  {name:<26} {value}");
            }
            if !snap.histograms.is_empty() {
                println!("telemetry histograms (ns):");
                println!(
                    "  {:<26} {:>8} {:>12} {:>12} {:>12}",
                    "name", "count", "p50", "p95", "p99"
                );
                for (name, h) in &snap.histograms {
                    println!(
                        "  {:<26} {:>8} {:>12} {:>12} {:>12}",
                        name, h.count, h.p50, h.p95, h.p99
                    );
                }
            }
        }
    }

    if args.blame > 0 {
        println!("\nslowest services by activation time:");
        for (name, d) in blame(&report.boot).into_iter().take(args.blame) {
            println!("  {d:>12} {name}");
        }
    }
    if let Some(path) = &args.chart {
        let chart = Bootchart::build(&report.boot, &machine);
        std::fs::write(path, chart.to_svg()).expect("write chart");
        println!("bootchart written to {path}");
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, booting_booster::sim::chrome_trace(&machine)).expect("write trace");
        println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = &args.dot {
        let graph = UnitGraph::build(scenario.units.clone()).expect("valid units");
        let group = booting_booster::bb::identify_bb_group(&graph, &scenario.completion);
        std::fs::write(path, graph.to_dot(Some(&group))).expect("write dot");
        println!("dependency graph written to {path}");
    }
}

// ---------------------------------------------------------------------
// sweep subcommand
// ---------------------------------------------------------------------

struct SweepArgs {
    profiles: String,
    services: usize,
    seeds: u64,
    seed_base: u64,
    features: String,
    workers: Option<usize>,
    deadline_ms: Option<u64>,
    fork_from: Option<String>,
    no_dedup: bool,
    json: Option<String>,
    metrics: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
}

fn parse_sweep_args(mut it: impl Iterator<Item = String>) -> SweepArgs {
    let mut args = SweepArgs {
        profiles: "ue48h6200".into(),
        services: 136,
        seeds: 20,
        seed_base: 0,
        features: "all".into(),
        workers: None,
        deadline_ms: None,
        fork_from: None,
        no_dedup: false,
        json: None,
        metrics: None,
        baseline: None,
        tolerance: 2.0,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--profiles" => args.profiles = value("--profiles"),
            "--services" => args.services = value("--services").parse().unwrap_or_else(|_| usage()),
            "--seeds" => args.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed_base = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--features" => args.features = value("--features"),
            "--workers" => {
                args.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(value("--deadline-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--fork-from" => args.fork_from = Some(value("--fork-from")),
            "--no-dedup" => args.no_dedup = true,
            "--json" => args.json = Some(value("--json")),
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--tolerance" => {
                args.tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown sweep flag {other}");
                usage()
            }
        }
    }
    args
}

fn resolve_profiles(spec: &str) -> Vec<MachineProfile> {
    if spec == "all" {
        return profiles::all_profiles();
    }
    // Accept any dash/underscore/case spelling: "galaxy-s6" == "GalaxyS6".
    fn fold(name: &str) -> String {
        name.chars()
            .filter(char::is_ascii_alphanumeric)
            .map(|c| c.to_ascii_lowercase())
            .collect()
    }
    spec.split(',')
        .map(|name| {
            let all = profiles::all_profiles();
            let known: Vec<&str> = all.iter().map(|p| p.name).collect();
            all.iter()
                .find(|p| fold(p.name) == fold(name.trim()))
                .cloned()
                .unwrap_or_else(|| {
                    eprintln!("unknown profile {name:?} (try: {} or all)", known.join(","));
                    exit(2);
                })
        })
        .collect()
}

fn run_sweep_cmd(args: SweepArgs) {
    if args.services < 24 {
        eprintln!("error: --services must be at least 24 (the TV backbone alone needs that)");
        exit(2);
    }
    let boosted = parse_features(&args.features);
    let boosted_label = if args.features == "all" || args.features == "full" {
        "bb".to_string()
    } else {
        args.features.clone()
    };
    let mut spec = SweepSpec::new()
        .with_metrics(args.metrics.is_some())
        .with_dedup(!args.no_dedup);
    if let Some(ms) = args.deadline_ms {
        spec = spec.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(phase) = &args.fork_from {
        match phase.as_str() {
            "kernel" | "kernel-handoff" => spec = spec.with_fork(true),
            other => {
                eprintln!("unknown --fork-from phase {other:?} (kernel-handoff)");
                usage()
            }
        }
    }
    for profile in resolve_profiles(&args.profiles) {
        let label = format!("{}-s{}", profile.name, args.services);
        spec = spec.cell(
            CellSpec::tizen(
                label,
                profile,
                TizenParams {
                    services: args.services,
                    ..TizenParams::default()
                },
            )
            .seeds(args.seed_base..args.seed_base + args.seeds)
            .config("conventional", BbConfig::conventional())
            .config(boosted_label.clone(), boosted),
        );
    }

    let pool = match args.workers {
        Some(n) => PoolConfig::with_workers(n),
        None => PoolConfig::default(),
    };
    eprintln!(
        "sweep: {} cells, {} boots, {} workers",
        spec.cells.len(),
        spec.total_boots(),
        pool.workers
    );
    let outcome = run_sweep(&spec, &pool);

    print!("{}", outcome.report.summary());
    eprintln!("{}", outcome.stats.summary());

    if let Some(path) = &args.json {
        let doc = outcome.report.to_json();
        if path == "-" {
            print!("{doc}");
        } else {
            std::fs::write(path, doc).expect("write sweep json");
            eprintln!("sweep report written to {path}");
        }
    }
    if let Some(path) = &args.metrics {
        match &outcome.report.metrics {
            None => eprintln!("no span metrics collected (every job failed)"),
            Some(metrics) => {
                let doc = metrics.to_json();
                if path == "-" {
                    print!("{doc}");
                } else {
                    std::fs::write(path, doc).expect("write metrics json");
                    eprintln!("span metrics written to {path}");
                }
            }
        }
    }
    if let Some(path) = &args.baseline {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path}: {e}");
            exit(1);
        });
        let diffs = outcome
            .report
            .diff_baseline(&baseline, args.tolerance)
            .unwrap_or_else(|e| {
                eprintln!("error: bad baseline JSON: {e}");
                exit(1);
            });
        let mut regressions = 0;
        for d in &diffs {
            if d.verdict != DiffVerdict::Unchanged {
                println!("{d}");
            }
            if d.verdict == DiffVerdict::Regression {
                regressions += 1;
            }
        }
        if regressions > 0 {
            eprintln!("{regressions} regression(s) beyond {}%", args.tolerance);
            exit(1);
        }
        println!(
            "baseline check passed ({} entries, tolerance {}%)",
            diffs.len(),
            args.tolerance
        );
    }
}

// ---------------------------------------------------------------------
// suspend subcommand
// ---------------------------------------------------------------------

struct SuspendArgs {
    scenario: String,
    services: Option<usize>,
    cores: Option<usize>,
    seed: Option<u64>,
    json: bool,
}

fn parse_suspend_args(mut it: impl Iterator<Item = String>) -> SuspendArgs {
    let mut args = SuspendArgs {
        scenario: "tv".into(),
        services: None,
        cores: None,
        seed: None,
        json: false,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario"),
            "--services" => {
                args.services = Some(value("--services").parse().unwrap_or_else(|_| usage()))
            }
            "--cores" => args.cores = Some(value("--cores").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown suspend flag {other}");
                usage()
            }
        }
    }
    args
}

fn suspend_json(
    scenario: &booting_booster::bb::Scenario,
    snapshot_bytes: usize,
    resume: booting_booster::sim::SimDuration,
    bb_boot: booting_booster::sim::SimTime,
    conv_boot: booting_booster::sim::SimTime,
) -> String {
    use booting_booster::kernel::StandbyPolicy;
    use booting_booster::sim::snapshot;

    let standby = StandbyPolicy::tv_suspend_to_ram();
    let mut out = json::open_document(json::SCHEMA_SNAPSHOT);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    out.push_str(&format!(
        "  \"snapshot_bytes\": {snapshot_bytes}, \"format_version\": {},\n",
        snapshot::FORMAT_VERSION
    ));
    out.push_str(&format!(
        "  \"config_hash\": {},\n",
        snapshot::config_hash(&scenario.machine)
    ));
    out.push_str(&format!(
        "  \"resume_ms\": {}, \"bb_boot_ms\": {}, \"conventional_boot_ms\": {},\n",
        json::ms(resume.as_nanos() as f64),
        json::ms(bb_boot.as_nanos() as f64),
        json::ms(conv_boot.as_nanos() as f64),
    ));
    out.push_str(&format!(
        "  \"standby_watts\": {}, \"standby_limit_watts\": {}, \"standby_compliant\": {}\n",
        standby.standby_watts,
        standby.limit_watts,
        standby.compliant(),
    ));
    out.push_str("}\n");
    out
}

fn run_suspend_cmd(args: SuspendArgs) {
    use booting_booster::kernel::{StandbyPolicy, SuspendToRam};
    use booting_booster::sim::snapshot;

    let boot_args = Args {
        scenario: args.scenario,
        units_dir: None,
        target: "boot.target".into(),
        completion: None,
        features: "all".into(),
        services: args.services,
        cores: args.cores,
        seed: args.seed,
        compare: false,
        explain: false,
        json: args.json,
        profile: false,
        metrics: false,
        chart: None,
        dot: None,
        trace: None,
        blame: 0,
    };
    let scenario = build_scenario(&boot_args);

    let boot = |cfg: BbConfig| {
        BootRequest::new(&scenario)
            .config(cfg)
            .run()
            .unwrap_or_else(|e| {
                eprintln!("boot failed: {e}");
                exit(1);
            })
    };
    let conv = boot(BbConfig::conventional());
    let bb = boot(BbConfig::full());
    let conv_boot = conv.report.boot_time();
    let bb_boot = bb.report.boot_time();

    // The booted, quiescent machine *is* the suspended RAM image:
    // serialize it, restore it, and wake the restored copy.
    let bytes = snapshot::save(&bb.machine).unwrap_or_else(|e| {
        eprintln!("snapshot failed: {e}");
        exit(1);
    });
    let mut resumed = snapshot::restore(&bytes).unwrap_or_else(|e| {
        eprintln!("restore failed: {e}");
        exit(1);
    });
    let resume = SuspendToRam::tv()
        .simulate_resume(&mut resumed)
        .resume_time();

    if args.json {
        print!(
            "{}",
            suspend_json(&scenario, bytes.len(), resume, bb_boot, conv_boot)
        );
        return;
    }

    let suspend = StandbyPolicy::tv_suspend_to_ram();
    let off = StandbyPolicy::tv_cold_off();
    let verdict = |p: &StandbyPolicy| {
        if p.compliant() {
            "compliant"
        } else {
            "VIOLATES the EU limit"
        }
    };
    println!(
        "scenario {} | {} units | snapshot of the booted machine: {} bytes (format v{})",
        scenario.name,
        scenario.units.len(),
        bytes.len(),
        snapshot::FORMAT_VERSION
    );
    println!("\npower-button to usable device:");
    println!(
        "  instant-on resume       {:>9.3} s   standby {:.1} W — {}",
        resume.as_secs_f64(),
        suspend.standby_watts,
        verdict(&suspend)
    );
    println!(
        "  BB cold boot            {:>9.3} s   standby {:.1} W — {}",
        bb_boot.as_secs_f64(),
        off.standby_watts,
        verdict(&off)
    );
    println!(
        "  conventional cold boot  {:>9.3} s   standby {:.1} W — {}",
        conv_boot.as_secs_f64(),
        off.standby_watts,
        verdict(&off)
    );
    println!(
        "\ninstant-on needs {:.1} W in standby — over the EU's {:.1} W cap (§2.1), \
         which is why the cold boot itself must be fast.",
        suspend.standby_watts,
        StandbyPolicy::EU_LIMIT_WATTS
    );
}

// ---------------------------------------------------------------------
// chaos subcommand
// ---------------------------------------------------------------------

struct ChaosArgs {
    profiles: String,
    services: usize,
    seeds: u64,
    seed_base: u64,
    plans: u64,
    plan_seed: u64,
    corruption: u64,
    corruption_seed: u64,
    workers: Option<usize>,
    deadline_ms: u64,
    restart: String,
    restart_sec_ms: u64,
    burst: u32,
    json: Option<String>,
}

fn parse_chaos_args(mut it: impl Iterator<Item = String>) -> ChaosArgs {
    let mut args = ChaosArgs {
        profiles: "ue48h6200".into(),
        services: 136,
        seeds: 10,
        seed_base: 0,
        plans: 4,
        plan_seed: 1000,
        corruption: 0,
        corruption_seed: 5000,
        workers: None,
        deadline_ms: FallbackPolicy::default().deadline.as_millis(),
        restart: "on-failure".into(),
        restart_sec_ms: 100,
        burst: 3,
        json: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--profiles" => args.profiles = value("--profiles"),
            "--services" => args.services = value("--services").parse().unwrap_or_else(|_| usage()),
            "--seeds" => args.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed_base = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--plans" => args.plans = value("--plans").parse().unwrap_or_else(|_| usage()),
            "--plan-seed" => {
                args.plan_seed = value("--plan-seed").parse().unwrap_or_else(|_| usage())
            }
            "--corruption" => {
                args.corruption = value("--corruption").parse().unwrap_or_else(|_| usage())
            }
            "--corruption-seed" => {
                args.corruption_seed = value("--corruption-seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--workers" => {
                args.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--restart" => args.restart = value("--restart"),
            "--restart-sec-ms" => {
                args.restart_sec_ms = value("--restart-sec-ms")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--burst" => args.burst = value("--burst").parse().unwrap_or_else(|_| usage()),
            "--json" => args.json = Some(value("--json")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown chaos flag {other}");
                usage()
            }
        }
    }
    args
}

fn run_chaos_cmd(args: ChaosArgs) {
    if args.services < 24 {
        eprintln!("error: --services must be at least 24 (the TV backbone alone needs that)");
        exit(2);
    }
    let restart = match args.restart.as_str() {
        "no" | "none" => RestartPolicy::No,
        "on-failure" => RestartPolicy::OnFailure,
        "always" => RestartPolicy::Always,
        other => {
            eprintln!("unknown --restart policy {other:?} (no|on-failure|always)");
            usage()
        }
    };
    let supervision = if restart == RestartPolicy::No {
        None
    } else {
        Some(Supervision {
            restart,
            restart_sec_ms: args.restart_sec_ms,
            start_limit_burst: args.burst,
        })
    };
    let mut spec = ChaosSpec::new();
    for profile in resolve_profiles(&args.profiles) {
        let label = format!("{}-s{}", profile.name, args.services);
        spec = spec.cell(
            ChaosCellSpec::tizen(
                label,
                profile,
                TizenParams {
                    services: args.services,
                    ..TizenParams::default()
                },
            )
            .seeds(args.seed_base..args.seed_base + args.seeds)
            .fault_plans(args.plans, args.plan_seed)
            .corruption_plans(args.corruption, args.corruption_seed)
            .supervision(supervision)
            .deadline_ms(args.deadline_ms)
            .conventional_vs_bb(),
        );
    }

    let pool = match args.workers {
        Some(n) => PoolConfig::with_workers(n),
        None => PoolConfig::default(),
    };
    eprintln!(
        "chaos: {} cells, {} boots ({} fault plans + control, {} corruption plans + pristine), {} workers",
        spec.cells.len(),
        spec.total_boots(),
        args.plans,
        args.corruption,
        pool.workers
    );
    let outcome = run_chaos(&spec, &pool);

    print!("{}", outcome.report.summary());
    eprintln!("{}", outcome.stats.summary());

    if let Some(path) = &args.json {
        let doc = outcome.report.to_json();
        if path == "-" {
            print!("{doc}");
        } else {
            std::fs::write(path, doc).expect("write chaos json");
            eprintln!("chaos report written to {path}");
        }
    }
    if !outcome.report.failures.is_empty() {
        exit(1);
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("sweep") => {
            argv.next();
            run_sweep_cmd(parse_sweep_args(argv));
        }
        Some("chaos") => {
            argv.next();
            run_chaos_cmd(parse_chaos_args(argv));
        }
        Some("suspend") => {
            argv.next();
            run_suspend_cmd(parse_suspend_args(argv));
        }
        _ => run_boot(parse_args(argv)),
    }
}
