//! `bbsim` — boot-simulation CLI.
//!
//! Boots a scenario under a chosen Booting Booster configuration and
//! prints the timeline; optionally writes a bootchart SVG and the
//! dependency graph. The `sweep` subcommand runs a parallel seed sweep
//! on the bb-fleet work-queue service instead of a single boot; `serve`
//! keeps that service alive behind a socket and `submit` sends jobs to
//! it.
//!
//! ```text
//! bbsim [--scenario tv|tv136|camera] [--units DIR --target T --completion U]
//!       [--features all|none|LIST] [--services N] [--cores N] [--seed N]
//!       [--compare] [--explain] [--json] [--profile] [--metrics]
//!       [--chart FILE.svg] [--dot FILE.dot] [--trace FILE.json] [--blame N]
//!
//! bbsim sweep [--profiles NAMES|all] [--services N] [--seeds N] [--seed N]
//!             [--features all|none|LIST] [--workers N] [--deadline-ms N]
//!             [--fork-from kernel-handoff] [--no-dedup] [--json FILE|-]
//!             [--metrics FILE|-] [--baseline FILE] [--tolerance PCT]
//!
//! bbsim suspend [--scenario tv|tv136|camera] [--services N] [--cores N]
//!               [--seed N] [--json]
//!
//! bbsim chaos [--profiles NAMES|all] [--services N] [--seeds N] [--seed N]
//!             [--plans N] [--plan-seed N] [--corruption N]
//!             [--corruption-seed N] [--workers N] [--deadline-ms N]
//!             [--restart no|on-failure|always] [--restart-sec-ms N]
//!             [--burst N] [--json FILE|-]
//!
//! bbsim serve (--socket PATH | --tcp ADDR) [--workers N]
//!             [--queue-cap N] [--client-quota N]
//!
//! bbsim submit [sweep|chaos] (--socket PATH | --tcp ADDR) [job flags]
//!              [--json FILE|-] [--metrics FILE|-] [--stats] [--shutdown]
//! ```
//!
//! `serve` runs the persistent fleet service: one shared cache of
//! compiled plans, memoized scenarios, deduplicated boots, and kernel
//! checkpoints across every job any client submits. `submit` speaks
//! the `bb-serve-v1` NDJSON protocol to it; a submitted sweep's
//! `--json` output is byte-identical to the in-process
//! `bbsim sweep --json` for the same flags. `submit --stats` prints
//! the service's `bb-serve-stats-v1` counters; `submit --shutdown`
//! stops the server.
//!
//! With `--units DIR`, your own systemd unit files are parsed and booted
//! with synthesized workload bodies (structure exploration, not absolute
//! timing); `--target` defaults to `boot.target` and `--completion` to
//! the target's first strong requirement. Parsed-but-unsupported
//! directives (e.g. `Restart=`) are reported on stderr.
//!
//! `--explain` prints the resolved pass pipeline (which passes ran and
//! which were skipped) plus the per-pass `PassDelta` attribution
//! table; with `--json` the same deltas appear under `"passes"`.
//!
//! `--profile` prints the critical-path table (the longest blocking
//! chain from power-on to the completion unit, with per-edge slack);
//! combined with `--json` it emits a `bb-profile-v1` document instead
//! of the boot report. `--metrics` boots with machine telemetry enabled
//! and prints the counter/histogram snapshot (`bb-metrics-v1` with
//! `--json`). On `sweep`, `--metrics FILE|-` aggregates per-span
//! durations across the whole sweep into a `bb-metrics-v1` document
//! (byte-identical for any `--workers` value).
//!
//! `LIST` is a comma-separated subset of: rcu-booster, defer-memory,
//! modularizer, defer-journal, deferred-executor, preparser, bb-group.
//!
//! `sweep --fork-from kernel-handoff` forks each job's boots from a
//! shared kernel checkpoint ([`bb_core::Checkpoint`]): the boot prefix
//! is simulated once per distinct prefix key and every config resumes
//! from the saved snapshot. Output is byte-identical to the unforked
//! sweep; the pool summary shows how many kernel simulations ran.
//!
//! `sweep` deduplicates identical grid points by default: two boots
//! with the same (scenario content × seed × config) are simulated once
//! and the deterministic result is fanned out, with compiled boot plans
//! shared through a [`bb_core::PlanCache`]. Output stays byte-identical
//! (the pool summary shows dedup and plan-cache counts); `--no-dedup`
//! forces every grid point to re-simulate.
//!
//! `suspend` compares the three power paths of §2.1 on one scenario: it
//! boots the conventional and full-BB shapes, snapshots the booted
//! machine ([`bb_sim::snapshot`] — the stand-in for the suspended RAM
//! image), restores it, and executes the suspend-to-RAM resume sequence
//! on the restored machine. `--json` emits a `bb-snapshot-v1` document.
//!
//! `chaos` grids `{seed × fault-plan × corruption × config}`: every
//! boot runs under the supervised BB→conventional fallback with
//! `--plans` seeded fault plans (plus the fault-free control plan),
//! `Restart=` armed on every service, and the aggregate reports
//! recovery rate, restart counts, degraded-boot rate, and
//! boot-time-under-fault percentiles. `--corruption N` adds N seeded
//! [`bb_sim::CorruptionPlan`]s (plus the pristine control) that damage
//! each scenario's pre-parse blob and drive the boot through the
//! artifact integrity chain ([`bb_core::recovery`]); per-config stats
//! then include artifact rejection rates and recovery-cost
//! percentiles. Output is deterministic: the same seeds give
//! byte-identical `--json` for any `--workers` value.

use std::process::exit;

use booting_booster::bb::{
    analyze_directives, attribution_table, metrics_snapshot, profile, BbConfig, BootRequest,
    Comparison, Pipeline,
};
use booting_booster::fleet::{
    json, run_chaos, run_sweep, DiffVerdict, FleetCache, PoolConfig, ServiceConfig,
};
use booting_booster::init::{
    blame, parse_unit_dir_with_warnings, time_summary, Bootchart, UnitGraph, UnitName,
};
use booting_booster::serve::{BindAddr, Client, JobKind, Server, SweepArgs};
use booting_booster::workloads::{
    camera_scenario, custom_scenario, profiles, tv_scenario, tv_scenario_open_source,
    tv_scenario_with, TizenParams,
};

struct Args {
    scenario: String,
    units_dir: Option<String>,
    target: String,
    completion: Option<String>,
    features: String,
    services: Option<usize>,
    cores: Option<usize>,
    seed: Option<u64>,
    compare: bool,
    explain: bool,
    json: bool,
    profile: bool,
    metrics: bool,
    chart: Option<String>,
    dot: Option<String>,
    trace: Option<String>,
    blame: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: bbsim [--scenario tv|tv136|camera] [--features all|none|LIST]\n\
         \u{20}            [--services N] [--cores N] [--seed N] [--compare] [--explain]\n\
         \u{20}            [--json] [--profile] [--metrics] [--chart FILE.svg]\n\
         \u{20}            [--dot FILE.dot] [--blame N]\n\
         \u{20}      bbsim sweep [--profiles NAMES|all] [--services N] [--seeds N]\n\
         \u{20}            [--seed N] [--features LIST] [--workers N] [--deadline-ms N]\n\
         \u{20}            [--fork-from kernel-handoff] [--no-dedup] [--json FILE|-]\n\
         \u{20}            [--metrics FILE|-] [--baseline FILE] [--tolerance PCT]\n\
         \u{20}      bbsim suspend [--scenario tv|tv136|camera] [--services N]\n\
         \u{20}            [--cores N] [--seed N] [--json]\n\
         \u{20}      bbsim chaos [--profiles NAMES|all] [--services N] [--seeds N]\n\
         \u{20}            [--seed N] [--plans N] [--plan-seed N] [--corruption N]\n\
         \u{20}            [--corruption-seed N] [--workers N] [--deadline-ms N]\n\
         \u{20}            [--restart no|on-failure|always] [--restart-sec-ms N]\n\
         \u{20}            [--burst N] [--json FILE|-]\n\
         \u{20}      bbsim serve (--socket PATH | --tcp ADDR) [--workers N]\n\
         \u{20}            [--queue-cap N] [--client-quota N]\n\
         \u{20}      bbsim submit [sweep|chaos] (--socket PATH | --tcp ADDR)\n\
         \u{20}            [job flags] [--json FILE|-] [--metrics FILE|-]\n\
         \u{20}            [--stats] [--shutdown]\n\
         LIST: comma-separated of rcu-booster,defer-memory,modularizer,\n\
         \u{20}     defer-journal,deferred-executor,preparser,bb-group"
    );
    exit(2)
}

fn parse_args(mut it: impl Iterator<Item = String>) -> Args {
    let mut args = Args {
        scenario: "tv".into(),
        units_dir: None,
        target: "boot.target".into(),
        completion: None,
        features: "all".into(),
        services: None,
        cores: None,
        seed: None,
        compare: false,
        explain: false,
        json: false,
        profile: false,
        metrics: false,
        chart: None,
        dot: None,
        trace: None,
        blame: 0,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario"),
            "--units" => args.units_dir = Some(value("--units")),
            "--target" => args.target = value("--target"),
            "--completion" => args.completion = Some(value("--completion")),
            "--features" => args.features = value("--features"),
            "--services" => {
                args.services = Some(value("--services").parse().unwrap_or_else(|_| usage()))
            }
            "--cores" => args.cores = Some(value("--cores").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--compare" => args.compare = true,
            "--explain" => args.explain = true,
            "--json" => args.json = true,
            "--profile" => args.profile = true,
            "--metrics" => args.metrics = true,
            "--chart" => args.chart = Some(value("--chart")),
            "--dot" => args.dot = Some(value("--dot")),
            "--trace" => args.trace = Some(value("--trace")),
            "--blame" => args.blame = value("--blame").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_features(spec: &str) -> BbConfig {
    BbConfig::from_feature_list(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    })
}

fn build_scenario(args: &Args) -> booting_booster::bb::Scenario {
    if let Some(dir) = &args.units_dir {
        if args.seed.is_some() {
            eprintln!("error: --seed only applies to generated tv scenarios, not --units");
            exit(2);
        }
        let (units, warnings) = parse_unit_dir_with_warnings(std::path::Path::new(dir))
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            });
        // ServiceAnalyzer lint: surface directives the parser accepted
        // but the simulation drops, instead of swallowing them.
        for finding in analyze_directives(&warnings) {
            eprintln!("warning: {finding}");
        }
        let graph = UnitGraph::build(units.clone()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        // Completion: explicit flag, or the target's first strong
        // requirement.
        let completion = match &args.completion {
            Some(c) => UnitName::parse(c).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1);
            }),
            None => {
                let Some(target_idx) = graph.idx(&UnitName::new(&args.target)) else {
                    eprintln!(
                        "error: target {} not found in the unit directory",
                        args.target
                    );
                    exit(1);
                };
                // Prefer the target's own strong requirement; fall back
                // to anything it pulls in.
                let mut edges: Vec<_> = graph.requirement_edges(target_idx).collect();
                edges.sort_by_key(|e| {
                    (
                        e.kind != booting_booster::init::EdgeKind::RequiresStrong,
                        e.src,
                    )
                });
                edges
                    .first()
                    .map(|e| graph.unit(e.src).name.clone())
                    .unwrap_or_else(|| {
                        eprintln!(
                            "error: {} has no requirements; pass --completion",
                            args.target
                        );
                        exit(1);
                    })
            }
        };
        let mut profile = profiles::ue48h6200();
        if let Some(cores) = args.cores {
            profile.machine.cores = cores;
        }
        return custom_scenario(profile, units, &args.target, vec![completion]);
    }
    let base_params = match args.scenario.as_str() {
        "tv" => TizenParams::commercial(),
        "tv136" => TizenParams::open_source(),
        "camera" => {
            if args.seed.is_some() || args.services.is_some() {
                eprintln!("error: --seed/--services only apply to tv scenarios");
                exit(2);
            }
            let mut scenario = camera_scenario();
            if let Some(cores) = args.cores {
                scenario.machine.cores = cores;
            }
            return scenario;
        }
        other => {
            eprintln!("unknown scenario {other:?}");
            usage()
        }
    };
    if args.services.is_none() && args.seed.is_none() {
        let mut scenario = match args.scenario.as_str() {
            "tv" => tv_scenario(),
            _ => tv_scenario_open_source(),
        };
        if let Some(cores) = args.cores {
            scenario.machine.cores = cores;
        }
        return scenario;
    }
    let services = args.services.unwrap_or(base_params.services);
    if services < 24 {
        eprintln!("error: --services must be at least 24 (the TV backbone alone needs that)");
        exit(2);
    }
    let mut profile = profiles::ue48h6200();
    if let Some(cores) = args.cores {
        profile.machine.cores = cores;
    }
    tv_scenario_with(
        profile,
        TizenParams {
            services,
            seed: args.seed.unwrap_or(base_params.seed),
            ..base_params
        },
    )
}

fn boot_json(
    scenario: &booting_booster::bb::Scenario,
    cfg: &BbConfig,
    report: &booting_booster::bb::FullBootReport,
    conventional: Option<&booting_booster::bb::FullBootReport>,
    seed: Option<u64>,
) -> String {
    // Same auditable-codec policy and `{:.3}` ms formatting as the
    // fleet sweep JSON, so single boots diff cleanly against cells.
    let mut out = json::open_document(json::SCHEMA_BOOT);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    if let Some(seed) = seed {
        out.push_str(&format!("  \"seed\": {seed},\n"));
    }
    out.push_str(&format!(
        "  \"units\": {}, \"cores\": {}, \"features\": {},\n",
        scenario.units.len(),
        scenario.machine.cores,
        cfg.active_features()
    ));
    let completed = report.boot.completion_time.is_some();
    out.push_str(&format!("  \"completed\": {completed},\n"));
    if completed {
        out.push_str(&format!(
            "  \"boot_ms\": {},\n",
            json::ms(report.boot_time().as_nanos() as f64)
        ));
    }
    out.push_str(&format!(
        "  \"kernel_ms\": {}, \"init_ms\": {}, \"load_ms\": {}, \"quiesce_ms\": {}",
        json::ms(report.kernel.kernel_total().as_nanos() as f64),
        json::ms(
            report
                .boot
                .init_done
                .since(report.boot.userspace_start)
                .as_nanos() as f64
        ),
        json::ms(
            report
                .boot
                .load_done
                .since(report.boot.init_done)
                .as_nanos() as f64
        ),
        json::ms(report.quiesce_time.as_nanos() as f64),
    ));
    out.push_str(",\n  \"passes\": [");
    for (i, d) in report.deltas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"pass\": \"{}\", \"estimated_saving_ms\": {}, \
             \"initcalls_deferred\": {}, \"modules_deferred\": {}, \
             \"tasks_deferred\": {}, \"edges_stripped\": {}, \
             \"units_touched\": {}, \"io_bytes_shifted\": {}}}",
            json::escape(d.pass),
            json::ms(d.estimated_saving.as_nanos() as f64),
            d.initcalls_deferred,
            d.modules_deferred,
            d.tasks_deferred,
            d.edges_stripped,
            d.units_touched,
            d.io_bytes_shifted,
        ));
    }
    if report.deltas.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    if !report.bb_group.is_empty() {
        out.push_str(",\n  \"bb_group\": [");
        for (i, name) in report.bb_group.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json::escape(name.as_str())));
        }
        out.push(']');
    }
    if let Some(conv) = conventional {
        if let (Some(c), Some(b)) = (conv.boot.completion_time, report.boot.completion_time) {
            let conv_ns = c.as_nanos() as f64;
            let boosted_ns = b.as_nanos() as f64;
            out.push_str(&format!(
                ",\n  \"conventional_ms\": {}, \"saving_ms\": {}, \"saving_pct\": {:.3}",
                json::ms(conv_ns),
                json::ms(conv_ns - boosted_ns),
                100.0 * (1.0 - boosted_ns / conv_ns)
            ));
        }
    }
    out.push_str("\n}\n");
    out
}

fn profile_json(
    scenario: &booting_booster::bb::Scenario,
    report: &booting_booster::bb::FullBootReport,
    prof: &booting_booster::bb::BootProfile,
) -> String {
    let mut out = json::open_document(json::SCHEMA_PROFILE);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    out.push_str(&format!(
        "  \"boot_ms\": {},\n",
        json::ms(report.boot_time().as_nanos() as f64)
    ));
    out.push_str("  \"critical_path\": ");
    match &prof.critical_path {
        None => out.push_str("null"),
        Some(cp) => {
            out.push_str(&format!(
                "{{\n    \"total_ms\": {},\n    \"steps\": [",
                json::ms(cp.total.as_nanos() as f64)
            ));
            for (i, step) in cp.steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let slack = match step.slack {
                    None => "null".to_string(),
                    Some(d) => json::ms(d.as_nanos() as f64),
                };
                out.push_str(&format!(
                    "\n      {{\"span\": \"{}\", \"start_ms\": {}, \"end_ms\": {}, \
                     \"duration_ms\": {}, \"slack_ms\": {}}}",
                    json::escape(&step.name),
                    json::ms(step.start.as_nanos() as f64),
                    json::ms(step.end.as_nanos() as f64),
                    json::ms(step.duration().as_nanos() as f64),
                    slack,
                ));
            }
            if !cp.steps.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]\n  }");
        }
    }
    out.push_str(",\n  \"spans\": [");
    for (i, s) in prof.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"start_ms\": {}, \"end_ms\": {}}}",
            json::escape(&s.name),
            json::ms(s.start.as_nanos() as f64),
            json::ms(s.end.as_nanos() as f64),
        ));
    }
    if !prof.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn metrics_json(
    scenario: &booting_booster::bb::Scenario,
    snap: &booting_booster::bb::MetricsSnapshot,
) -> String {
    let mut out = json::open_document(json::SCHEMA_METRICS);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", json::escape(name), value));
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            json::escape(name),
            h.count,
            h.min,
            h.max,
            h.mean,
            h.p50,
            h.p95,
            h.p99,
        ));
    }
    if !snap.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

fn run_boot(args: Args) {
    let scenario = build_scenario(&args);
    let cfg = parse_features(&args.features);

    if !args.json {
        println!(
            "scenario {} | {} units | {} cores | features: {}/7",
            scenario.name,
            scenario.units.len(),
            scenario.machine.cores,
            cfg.active_features()
        );
    }

    let boot = match BootRequest::new(&scenario)
        .config(cfg)
        .telemetry(args.metrics)
        .run()
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("boot failed: {e}");
            exit(1);
        }
    };
    let (report, machine) = (boot.report, boot.machine);
    let conventional = if args.compare || args.json {
        Some(
            BootRequest::new(&scenario)
                .config(BbConfig::conventional())
                .run()
                .expect("conventional boots")
                .report,
        )
    } else {
        None
    };
    let prof = if args.profile {
        match profile(&scenario, &report, Some(&machine)) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("profile failed: {e}");
                exit(1);
            }
        }
    } else {
        None
    };

    if args.json {
        // --profile/--metrics switch the document; a plain --json boot
        // report stays byte-identical to what it always was.
        if let Some(prof) = &prof {
            print!("{}", profile_json(&scenario, &report, prof));
        } else if args.metrics {
            print!(
                "{}",
                metrics_json(&scenario, &metrics_snapshot(&report, &machine))
            );
        } else {
            print!(
                "{}",
                boot_json(&scenario, &cfg, &report, conventional.as_ref(), args.seed)
            );
        }
    } else {
        match report.boot.completion_time {
            Some(t) => println!("boot completed at {:.3} s", t.as_secs_f64()),
            None => {
                println!(
                    "boot did NOT complete (blocked: {})",
                    report.boot.outcome.blocked.len()
                )
            }
        }
        println!("{}", time_summary(&report.boot));
        println!(
            "kernel {} | init {} | load {} | quiesce {:.3} s",
            report.kernel.kernel_total(),
            report.boot.init_done.since(report.boot.userspace_start),
            report.boot.load_done.since(report.boot.init_done),
            report.quiesce_time.as_secs_f64()
        );
        if !report.bb_group.is_empty() {
            let names: Vec<&str> = report.bb_group.iter().map(|n| n.as_str()).collect();
            println!("BB group: {}", names.join(", "));
        }
        if let Some(conv) = &conventional {
            println!("\n{}", Comparison::build(conv, &report).to_table());
        }
        if args.explain {
            println!("\npass pipeline (features: {}/7):", cfg.active_features());
            for pass in Pipeline::standard().passes() {
                let state = if pass.enabled(&cfg) { "run " } else { "skip" };
                println!("  [{state}] {}", pass.name());
            }
            if !report.deltas.is_empty() {
                println!("\n{}", attribution_table(&report.deltas));
            }
        }
        if let Some(prof) = &prof {
            match &prof.critical_path {
                Some(cp) => println!("\n{}", cp.render()),
                None => println!("\n(no critical path: boot never completed)"),
            }
        }
        if args.metrics {
            let snap = metrics_snapshot(&report, &machine);
            println!("\ntelemetry counters:");
            for (name, value) in &snap.counters {
                println!("  {name:<26} {value}");
            }
            if !snap.histograms.is_empty() {
                println!("telemetry histograms (ns):");
                println!(
                    "  {:<26} {:>8} {:>12} {:>12} {:>12}",
                    "name", "count", "p50", "p95", "p99"
                );
                for (name, h) in &snap.histograms {
                    println!(
                        "  {:<26} {:>8} {:>12} {:>12} {:>12}",
                        name, h.count, h.p50, h.p95, h.p99
                    );
                }
            }
        }
    }

    if args.blame > 0 {
        println!("\nslowest services by activation time:");
        for (name, d) in blame(&report.boot).into_iter().take(args.blame) {
            println!("  {d:>12} {name}");
        }
    }
    if let Some(path) = &args.chart {
        let chart = Bootchart::build(&report.boot, &machine);
        std::fs::write(path, chart.to_svg()).expect("write chart");
        println!("bootchart written to {path}");
    }
    if let Some(path) = &args.trace {
        std::fs::write(path, booting_booster::sim::chrome_trace(&machine)).expect("write trace");
        println!("chrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = &args.dot {
        let graph = UnitGraph::build(scenario.units.clone()).expect("valid units");
        let group = booting_booster::bb::identify_bb_group(&graph, &scenario.completion);
        std::fs::write(path, graph.to_dot(Some(&group))).expect("write dot");
        println!("dependency graph written to {path}");
    }
}

// ---------------------------------------------------------------------
// sweep subcommand
// ---------------------------------------------------------------------

/// Flags that never cross the wire: execution placement and output
/// destinations. Everything grid-shaped lives in the shared
/// [`SweepArgs`] wire struct.
#[derive(Default)]
struct LocalFlags {
    workers: Option<usize>,
    json: Option<String>,
    metrics: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
}

/// Parses a sweep/chaos/suspend command line: wire flags go through
/// [`SweepArgs::parse_flag`]; whatever it doesn't claim is matched
/// against the client-side flags here.
fn parse_job_args(kind: JobKind, mut it: impl Iterator<Item = String>) -> (SweepArgs, LocalFlags) {
    let mut job = SweepArgs::new(kind);
    let mut local = LocalFlags {
        tolerance: 2.0,
        ..LocalFlags::default()
    };
    let name = kind.as_str();
    while let Some(flag) = it.next() {
        match job.parse_flag(&flag, &mut || it.next()) {
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
            Ok(true) => continue,
            Ok(false) => {}
        }
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
        match (flag.as_str(), kind) {
            ("--workers", JobKind::Sweep | JobKind::Chaos) => {
                local.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()))
            }
            // suspend's --json is a mode switch (print to stdout);
            // sweep/chaos take a destination path.
            ("--json", JobKind::Suspend) => local.json = Some("-".into()),
            ("--json", _) => local.json = Some(value("--json")),
            ("--metrics", JobKind::Sweep) => {
                job.metrics = true;
                local.metrics = Some(value("--metrics"));
            }
            ("--baseline", JobKind::Sweep) => local.baseline = Some(value("--baseline")),
            ("--tolerance", JobKind::Sweep) => {
                local.tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage())
            }
            ("--help" | "-h", _) => usage(),
            (other, _) => {
                eprintln!("unknown {name} flag {other}");
                usage()
            }
        }
    }
    (job, local)
}

fn pool_config(local: &LocalFlags) -> PoolConfig {
    match local.workers {
        Some(n) => PoolConfig::with_workers(n),
        None => PoolConfig::default(),
    }
}

/// Writes a report document to a `--json`/`--metrics` style
/// destination: `-` is stdout, anything else a file path.
fn write_doc(path: &str, doc: &str, what: &str) {
    if path == "-" {
        print!("{doc}");
    } else {
        std::fs::write(path, doc).unwrap_or_else(|e| {
            eprintln!("error: cannot write {what} to {path}: {e}");
            exit(1);
        });
        eprintln!("{what} written to {path}");
    }
}

fn read_baseline(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {path}: {e}");
        exit(1);
    })
}

/// Prints baseline drift and exits 1 on regression. Shared by the
/// in-process sweep and `submit`.
fn report_diffs(diffs: Vec<booting_booster::fleet::DiffEntry>, tolerance: f64) {
    let mut regressions = 0;
    for d in &diffs {
        if d.verdict != DiffVerdict::Unchanged {
            println!("{d}");
        }
        if d.verdict == DiffVerdict::Regression {
            regressions += 1;
        }
    }
    if regressions > 0 {
        eprintln!("{regressions} regression(s) beyond {tolerance}%");
        exit(1);
    }
    println!(
        "baseline check passed ({} entries, tolerance {tolerance}%)",
        diffs.len(),
    );
}

fn run_sweep_cmd(job: SweepArgs, local: LocalFlags) {
    let spec = job.sweep_spec().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2);
    });
    let pool = pool_config(&local);
    eprintln!(
        "sweep: {} cells, {} boots, {} workers",
        spec.cells.len(),
        spec.total_boots(),
        pool.workers
    );
    let outcome = run_sweep(&spec, &pool, &FleetCache::fresh());

    print!("{}", outcome.report.summary());
    eprintln!("{}", outcome.stats.summary());

    if let Some(path) = &local.json {
        write_doc(path, &outcome.report.to_json(), "sweep report");
    }
    if let Some(path) = &local.metrics {
        match &outcome.report.metrics {
            None => eprintln!("no span metrics collected (every job failed)"),
            Some(metrics) => write_doc(path, &metrics.to_json(), "span metrics"),
        }
    }
    if let Some(path) = &local.baseline {
        let diffs = outcome
            .report
            .diff_baseline(&read_baseline(path), local.tolerance)
            .unwrap_or_else(|e| {
                eprintln!("error: bad baseline JSON: {e}");
                exit(1);
            });
        report_diffs(diffs, local.tolerance);
    }
}

// ---------------------------------------------------------------------
// suspend subcommand
// ---------------------------------------------------------------------

fn suspend_json(
    scenario: &booting_booster::bb::Scenario,
    snapshot_bytes: usize,
    resume: booting_booster::sim::SimDuration,
    bb_boot: booting_booster::sim::SimTime,
    conv_boot: booting_booster::sim::SimTime,
) -> String {
    use booting_booster::kernel::StandbyPolicy;
    use booting_booster::sim::snapshot;

    let standby = StandbyPolicy::tv_suspend_to_ram();
    let mut out = json::open_document(json::SCHEMA_SNAPSHOT);
    out.push_str(&format!(
        "  \"scenario\": \"{}\",\n",
        json::escape(&scenario.name)
    ));
    out.push_str(&format!(
        "  \"snapshot_bytes\": {snapshot_bytes}, \"format_version\": {},\n",
        snapshot::FORMAT_VERSION
    ));
    out.push_str(&format!(
        "  \"config_hash\": {},\n",
        snapshot::config_hash(&scenario.machine)
    ));
    out.push_str(&format!(
        "  \"resume_ms\": {}, \"bb_boot_ms\": {}, \"conventional_boot_ms\": {},\n",
        json::ms(resume.as_nanos() as f64),
        json::ms(bb_boot.as_nanos() as f64),
        json::ms(conv_boot.as_nanos() as f64),
    ));
    out.push_str(&format!(
        "  \"standby_watts\": {}, \"standby_limit_watts\": {}, \"standby_compliant\": {}\n",
        standby.standby_watts,
        standby.limit_watts,
        standby.compliant(),
    ));
    out.push_str("}\n");
    out
}

fn run_suspend_cmd(job: SweepArgs, local: LocalFlags) {
    use booting_booster::kernel::{StandbyPolicy, SuspendToRam};
    use booting_booster::sim::snapshot;

    let json = local.json.is_some();
    let boot_args = Args {
        scenario: job.scenario,
        units_dir: None,
        target: "boot.target".into(),
        completion: None,
        features: "all".into(),
        services: job.services,
        cores: job.cores,
        seed: job.seed,
        compare: false,
        explain: false,
        json,
        profile: false,
        metrics: false,
        chart: None,
        dot: None,
        trace: None,
        blame: 0,
    };
    let scenario = build_scenario(&boot_args);

    let boot = |cfg: BbConfig| {
        BootRequest::new(&scenario)
            .config(cfg)
            .run()
            .unwrap_or_else(|e| {
                eprintln!("boot failed: {e}");
                exit(1);
            })
    };
    let conv = boot(BbConfig::conventional());
    let bb = boot(BbConfig::full());
    let conv_boot = conv.report.boot_time();
    let bb_boot = bb.report.boot_time();

    // The booted, quiescent machine *is* the suspended RAM image:
    // serialize it, restore it, and wake the restored copy.
    let bytes = snapshot::save(&bb.machine).unwrap_or_else(|e| {
        eprintln!("snapshot failed: {e}");
        exit(1);
    });
    let mut resumed = snapshot::restore(&bytes).unwrap_or_else(|e| {
        eprintln!("restore failed: {e}");
        exit(1);
    });
    let resume = SuspendToRam::tv()
        .simulate_resume(&mut resumed)
        .resume_time();

    if json {
        print!(
            "{}",
            suspend_json(&scenario, bytes.len(), resume, bb_boot, conv_boot)
        );
        return;
    }

    let suspend = StandbyPolicy::tv_suspend_to_ram();
    let off = StandbyPolicy::tv_cold_off();
    let verdict = |p: &StandbyPolicy| {
        if p.compliant() {
            "compliant"
        } else {
            "VIOLATES the EU limit"
        }
    };
    println!(
        "scenario {} | {} units | snapshot of the booted machine: {} bytes (format v{})",
        scenario.name,
        scenario.units.len(),
        bytes.len(),
        snapshot::FORMAT_VERSION
    );
    println!("\npower-button to usable device:");
    println!(
        "  instant-on resume       {:>9.3} s   standby {:.1} W — {}",
        resume.as_secs_f64(),
        suspend.standby_watts,
        verdict(&suspend)
    );
    println!(
        "  BB cold boot            {:>9.3} s   standby {:.1} W — {}",
        bb_boot.as_secs_f64(),
        off.standby_watts,
        verdict(&off)
    );
    println!(
        "  conventional cold boot  {:>9.3} s   standby {:.1} W — {}",
        conv_boot.as_secs_f64(),
        off.standby_watts,
        verdict(&off)
    );
    println!(
        "\ninstant-on needs {:.1} W in standby — over the EU's {:.1} W cap (§2.1), \
         which is why the cold boot itself must be fast.",
        suspend.standby_watts,
        StandbyPolicy::EU_LIMIT_WATTS
    );
}

// ---------------------------------------------------------------------
// chaos subcommand
// ---------------------------------------------------------------------

fn run_chaos_cmd(job: SweepArgs, local: LocalFlags) {
    let spec = job.chaos_spec().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2);
    });
    let pool = pool_config(&local);
    eprintln!(
        "chaos: {} cells, {} boots ({} fault plans + control, {} corruption plans + pristine), {} workers",
        spec.cells.len(),
        spec.total_boots(),
        job.plans,
        job.corruption,
        pool.workers
    );
    let outcome = run_chaos(&spec, &pool);

    print!("{}", outcome.report.summary());
    eprintln!("{}", outcome.stats.summary());

    if let Some(path) = &local.json {
        write_doc(path, &outcome.report.to_json(), "chaos report");
    }
    if !outcome.report.failures.is_empty() {
        exit(1);
    }
}

// ---------------------------------------------------------------------
// serve / submit subcommands
// ---------------------------------------------------------------------

fn parse_bind_addr(socket: Option<String>, tcp: Option<String>) -> BindAddr {
    match (socket, tcp) {
        (Some(path), None) => BindAddr::Unix(path.into()),
        (None, Some(addr)) => BindAddr::Tcp(addr),
        (None, None) => {
            eprintln!("error: pass --socket PATH or --tcp ADDR");
            usage()
        }
        (Some(_), Some(_)) => {
            eprintln!("error: --socket and --tcp are mutually exclusive");
            usage()
        }
    }
}

fn run_serve_cmd(mut it: impl Iterator<Item = String>) {
    let mut socket = None;
    let mut tcp = None;
    let mut config = ServiceConfig::default();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--tcp" => tcp = Some(value("--tcp")),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => {
                config.queue_capacity = value("--queue-cap").parse().unwrap_or_else(|_| usage())
            }
            "--client-quota" => {
                config.max_pending_per_client =
                    value("--client-quota").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown serve flag {other}");
                usage()
            }
        }
    }
    let addr = parse_bind_addr(socket, tcp);
    let workers = config.workers;
    let server = Server::bind(&addr, config).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        exit(1);
    });
    eprintln!("serving on {addr} with {workers} workers (submit jobs with: bbsim submit)");
    if let Err(e) = server.run() {
        eprintln!("serve loop failed: {e}");
        exit(1);
    }
    eprintln!("serve: drained and stopped");
}

fn run_submit_cmd(mut it: std::iter::Peekable<impl Iterator<Item = String>>) {
    let kind = match it.peek().map(String::as_str) {
        Some("sweep") => {
            it.next();
            JobKind::Sweep
        }
        Some("chaos") => {
            it.next();
            JobKind::Chaos
        }
        _ => JobKind::Sweep,
    };
    let mut job = SweepArgs::new(kind);
    let mut socket = None;
    let mut tcp = None;
    let mut json = None;
    let mut metrics = None;
    let mut baseline = None;
    let mut tolerance = 2.0f64;
    let mut stats = false;
    let mut shutdown = false;
    while let Some(flag) = it.next() {
        match job.parse_flag(&flag, &mut || it.next()) {
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
            Ok(true) => continue,
            Ok(false) => {}
        }
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--socket" => socket = Some(value("--socket")),
            "--tcp" => tcp = Some(value("--tcp")),
            "--json" => json = Some(value("--json")),
            "--metrics" if kind == JobKind::Sweep => {
                job.metrics = true;
                metrics = Some(value("--metrics"));
            }
            "--baseline" if kind == JobKind::Sweep => baseline = Some(value("--baseline")),
            "--tolerance" if kind == JobKind::Sweep => {
                tolerance = value("--tolerance").parse().unwrap_or_else(|_| usage())
            }
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown submit flag {other}");
                usage()
            }
        }
    }
    let addr = parse_bind_addr(socket, tcp);
    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {addr}: {e}");
        exit(1);
    });

    // --stats / --shutdown are service operations, not job submissions.
    if stats {
        let doc = client.stats().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        print!("{doc}");
    }
    if shutdown {
        client.shutdown().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1);
        });
        eprintln!("server on {addr} is stopping");
    }
    if stats || shutdown {
        return;
    }

    let result = client.run(&job).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    print!("{}", result.summary);
    eprintln!("{}", result.pool_summary);
    if let Some(path) = &json {
        let what = match kind {
            JobKind::Chaos => "chaos report",
            _ => "sweep report",
        };
        write_doc(path, &result.report, what);
    }
    if let Some(path) = &metrics {
        match &result.metrics {
            None => eprintln!("no span metrics collected (every job failed)"),
            Some(doc) => write_doc(path, doc, "span metrics"),
        }
    }
    if let Some(path) = &baseline {
        let diffs = booting_booster::fleet::diff_baseline_json(
            &result.report,
            &read_baseline(path),
            tolerance,
        )
        .unwrap_or_else(|e| {
            eprintln!("error: bad baseline or report JSON: {e}");
            exit(1);
        });
        report_diffs(diffs, tolerance);
    }
    // A chaos grid that failed boots is a failed run, same as the
    // in-process `bbsim chaos`.
    if kind == JobKind::Chaos && result.failures > 0 {
        exit(1);
    }
}

fn main() {
    let mut argv = std::env::args().skip(1).peekable();
    match argv.peek().map(String::as_str) {
        Some("sweep") => {
            argv.next();
            let (job, local) = parse_job_args(JobKind::Sweep, argv);
            run_sweep_cmd(job, local);
        }
        Some("chaos") => {
            argv.next();
            let (job, local) = parse_job_args(JobKind::Chaos, argv);
            run_chaos_cmd(job, local);
        }
        Some("suspend") => {
            argv.next();
            let (job, local) = parse_job_args(JobKind::Suspend, argv);
            run_suspend_cmd(job, local);
        }
        Some("serve") => {
            argv.next();
            run_serve_cmd(argv);
        }
        Some("submit") => {
            argv.next();
            run_submit_cmd(argv);
        }
        _ => run_boot(parse_args(argv)),
    }
}
